"""Tests for the logarithmic lower-bound adversaries (Theorems 3-5)."""

import math

import pytest

from repro.adversaries import FixedKAdversary, InclusiveAdversary, NestedAdversary
from repro.core import EFT, LeastWorkAssign, RandomAssign
from repro.offline import optimal_unit_fmax
from repro.psets import is_inclusive_family, is_nested_family


def eft_min(m):
    return EFT(m, tiebreak="min")


class TestInclusive(object):
    def test_family_is_inclusive(self):
        adv = InclusiveAdversary(8, p=50)
        result = adv.run(eft_min)
        family = [t.eligible(result.instance.m) for t in result.instance]
        assert is_inclusive_family(family)

    @pytest.mark.parametrize("m", [4, 8, 16])
    def test_ratio_approaches_bound(self, m):
        """Theorem 3: ratio -> floor(log2 m + 1) as p grows."""
        adv = InclusiveAdversary(m, p=10_000)
        result = adv.run(eft_min)
        bound = adv.theoretical_bound()
        assert result.ratio > bound - 0.01
        assert result.ratio <= bound  # finite p stays below the limit

    def test_non_power_of_two_m(self):
        adv = InclusiveAdversary(11, p=1000)
        assert adv.m == 8
        result = adv.run(eft_min)
        assert result.ratio > math.floor(math.log2(11) + 1) - 0.01

    def test_binds_other_immediate_dispatchers(self):
        """The bound holds for ANY immediate dispatch algorithm."""
        for factory in (
            lambda m: RandomAssign(m, rng=0),
            lambda m: LeastWorkAssign(m),
            lambda m: EFT(m, tiebreak="max"),
        ):
            adv = InclusiveAdversary(8, p=1000)
            result = adv.run(factory)
            assert result.ratio > adv.theoretical_bound() - 0.01

    def test_opt_is_exact(self):
        result = InclusiveAdversary(8, p=50).run(eft_min)
        assert result.opt_is_exact
        assert result.opt_fmax == 50

    def test_p_too_small_rejected(self):
        with pytest.raises(ValueError, match="p must exceed"):
            InclusiveAdversary(8, p=2)


class TestFixedK:
    def test_psets_have_size_k(self):
        adv = FixedKAdversary(9, 3, p=100)
        result = adv.run(eft_min)
        assert all(len(t.machines) == 3 for t in result.instance)

    def test_same_batch_sets_disjoint(self):
        adv = FixedKAdversary(9, 3, p=100)
        result = adv.run(eft_min)
        by_release: dict = {}
        for t in result.instance:
            by_release.setdefault(t.release, []).append(t.machines)
        for sets in by_release.values():
            union = set().union(*sets)
            assert len(union) == sum(len(s) for s in sets)

    @pytest.mark.parametrize("m,k", [(8, 2), (9, 3), (16, 4)])
    def test_ratio_approaches_bound(self, m, k):
        adv = FixedKAdversary(m, k, p=10_000)
        result = adv.run(eft_min)
        assert result.ratio > adv.theoretical_bound() - 0.01

    def test_rounds_m_to_power_of_k(self):
        adv = FixedKAdversary(10, 3)
        assert adv.m == 9
        assert adv.levels == 2

    def test_exact_power_detection(self):
        adv = FixedKAdversary(27, 3)
        assert adv.m == 27 and adv.levels == 3

    def test_binds_random_dispatcher(self):
        adv = FixedKAdversary(8, 2, p=1000)
        result = adv.run(lambda m: RandomAssign(m, rng=3))
        assert result.ratio > adv.theoretical_bound() - 0.01

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FixedKAdversary(8, 1)


class TestNested:
    def test_family_is_nested(self):
        adv = NestedAdversary(8)
        result = adv.run(eft_min)
        family = [t.eligible(result.instance.m) for t in result.instance]
        assert is_nested_family(family)

    @pytest.mark.parametrize("m", [4, 8, 16])
    def test_fmax_at_least_log_bound(self, m):
        """Theorem 5: Fmax >= log2(m) + 2 (so ratio >= bound with
        OPT <= 3)."""
        adv = NestedAdversary(m)
        result = adv.run(eft_min)
        assert result.fmax >= math.log2(adv.m) + 2
        assert result.ratio >= adv.theoretical_bound()

    def test_opt_at_most_three(self):
        """The paper claims the optimum keeps max-flow <= 3; check it
        exactly with the matching solver on a small m."""
        adv = NestedAdversary(4)
        result = adv.run(eft_min)
        assert optimal_unit_fmax(result.instance) <= 3

    def test_unit_tasks_only(self):
        result = NestedAdversary(4).run(eft_min)
        assert result.instance.all_unit

    def test_F_too_small_rejected(self):
        with pytest.raises(ValueError, match="F must be"):
            NestedAdversary(8, F=2)

    def test_binds_eft_max(self):
        adv = NestedAdversary(8)
        result = adv.run(lambda m: EFT(m, tiebreak="max"))
        assert result.fmax >= math.log2(adv.m) + 2
