"""Windowed popularity estimation from observed arrivals."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.rebalance import PopularityEstimator


class TestEstimate:
    def test_uniform_when_empty(self):
        est = PopularityEstimator(4, window=10.0)
        assert np.allclose(est.estimate(5.0), 0.25)

    def test_work_weighted(self):
        """A machine requested by few-but-heavy tasks is hot."""
        est = PopularityEstimator(2, window=10.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            est.observe(t, home=1, proc=1.0)
        est.observe(5.0, home=2, proc=12.0)
        w = est.estimate(6.0)
        assert w[1] == pytest.approx(12.0 / 16.0)
        assert w.sum() == pytest.approx(1.0)

    def test_window_slides(self):
        est = PopularityEstimator(2, window=5.0)
        est.observe(0.0, home=1, proc=1.0)
        est.observe(8.0, home=2, proc=1.0)
        # At t=9 the home-1 arrival (t=0) has left the (4, 9] window.
        w = est.estimate(9.0)
        assert w[0] == 0.0 and w[1] == 1.0

    def test_window_is_half_open_at_old_edge(self):
        est = PopularityEstimator(2, window=5.0)
        est.observe(4.0, home=1, proc=1.0)
        # (now - window, now] = (4, 9]: an observation exactly `window`
        # old has just left (the empty window estimates uniform).
        assert est.window_counts(9.0)[0] == 0.0
        assert est.window_counts(8.999)[0] == 1.0
        assert np.allclose(est.estimate(9.0), 0.5)
        assert est.estimate(8.999)[0] == 1.0

    def test_window_counts(self):
        est = PopularityEstimator(3, window=10.0)
        for t in (1.0, 2.0):
            est.observe(t, home=2, proc=0.5)
        assert np.array_equal(est.window_counts(5.0), [0.0, 2.0, 0.0])


class TestWorkRate:
    def test_zero_before_any_time(self):
        est = PopularityEstimator(2, window=10.0)
        assert est.work_rate(0.0) == 0.0

    def test_clips_horizon_early(self):
        """Before a full window exists the denominator is `now`, so the
        rate is not diluted by unobserved time."""
        est = PopularityEstimator(2, window=100.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            est.observe(t, home=1, proc=1.0)
        assert est.work_rate(4.0) == pytest.approx(1.0)

    def test_steady_state(self):
        est = PopularityEstimator(2, window=10.0)
        for i in range(200):
            est.observe(i * 0.5, home=1 + i % 2, proc=0.5)
        # 2 arrivals of 0.5 work per unit time.
        assert est.work_rate(99.5) == pytest.approx(1.0, rel=0.1)


class TestPlumbing:
    def test_validation(self):
        with pytest.raises(ValueError):
            PopularityEstimator(0, window=1.0)
        with pytest.raises(ValueError):
            PopularityEstimator(2, window=0.0)
        est = PopularityEstimator(2, window=1.0)
        with pytest.raises(ValueError, match="home 3"):
            est.observe(0.0, home=3, proc=1.0)

    def test_evidence_lands_in_registry(self):
        registry = MetricsRegistry()
        est = PopularityEstimator(2, window=5.0, registry=registry)
        est.observe(1.0, home=2, proc=0.25)
        snap = registry.snapshot()
        assert "rebalance_arrivals[2]" in snap["series"]

    def test_deterministic(self):
        def run():
            est = PopularityEstimator(3, window=7.0)
            for i in range(50):
                est.observe(i * 0.3, home=1 + (i * 7) % 3, proc=0.1 * (1 + i % 4))
            return est.estimate(12.0), est.work_rate(12.0)

        (wa, ra), (wb, rb) = run(), run()
        assert np.array_equal(wa, wb) and ra == rb
