"""Versioned rebalance traces: serialisation contract."""

import pytest

from repro.rebalance import (
    REBALANCE_TRACE_FORMAT,
    REBALANCE_TRACE_VERSION,
    RebalanceDecision,
    RebalanceTrace,
    dump_rebalance_trace,
    dumps_rebalance_trace,
    load_rebalance_trace,
    loads_rebalance_trace,
)


def _trace():
    decisions = (
        RebalanceDecision(
            version=0, time=50.0, triggered=False, work_rate=0.31,
            lam_star=4.0, lam_star_after=None, changes=(), added=(),
        ),
        RebalanceDecision(
            version=1, time=100.0, triggered=True, work_rate=3.7,
            lam_star=4.0, lam_star_after=6.25,
            changes=((3, (3, 2), (3, 4)), (5, (5, 2), (5, 3))),
            added=(5, 6, 8),
        ),
    )
    return RebalanceTrace(
        m=12, policy="adaptive", scheduler="eft-min", seed=7,
        decisions=decisions, meta={"digest": "abc123"},
    )


class TestRoundTrip:
    def test_loads_inverts_dumps(self):
        trace = _trace()
        again = loads_rebalance_trace(dumps_rebalance_trace(trace))
        assert again == trace

    def test_byte_stable(self):
        """Equal traces serialise to equal bytes (replay's comparator)."""
        a = dumps_rebalance_trace(_trace())
        b = dumps_rebalance_trace(loads_rebalance_trace(a))
        assert a == b
        assert a.endswith("\n")

    def test_file_round_trip(self, tmp_path):
        path = dump_rebalance_trace(_trace(), tmp_path / "sub" / "r.trace.jsonl")
        assert load_rebalance_trace(path) == _trace()

    def test_header_fields(self):
        import json

        header = json.loads(dumps_rebalance_trace(_trace()).splitlines()[0])
        assert header["format"] == REBALANCE_TRACE_FORMAT
        assert header["version"] == REBALANCE_TRACE_VERSION
        assert header["n_events"] == 2
        assert header["meta"] == {"digest": "abc123"}


class TestProperties:
    def test_counters(self):
        trace = _trace()
        assert trace.n_events == 2
        assert trace.n_triggered == 1
        assert trace.final_version == 1

    def test_empty_trace_version_zero(self):
        empty = RebalanceTrace(m=4, policy="static", scheduler="eft-min", seed=0, decisions=())
        assert empty.final_version == 0
        assert loads_rebalance_trace(dumps_rebalance_trace(empty)) == empty


class TestRejection:
    def test_empty_text(self):
        with pytest.raises(ValueError, match="empty"):
            loads_rebalance_trace("")

    def test_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro-rebalance-trace"):
            loads_rebalance_trace('{"format": "repro-trace", "version": 1}\n')

    def test_wrong_version(self):
        with pytest.raises(ValueError, match="unsupported"):
            loads_rebalance_trace(
                '{"format": "repro-rebalance-trace", "version": 99, "m": 4}\n'
            )

    def test_event_count_mismatch(self):
        text = dumps_rebalance_trace(_trace())
        truncated = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(ValueError, match="n_events"):
            loads_rebalance_trace(truncated)
