"""IntervalPlacement: the mutable-by-copy ring-interval table."""

import pytest

from repro.psets.replication import get_strategy
from repro.psets.sets import is_circular_interval
from repro.rebalance import IntervalPlacement, ring_start


class TestRingStart:
    def test_plain_interval(self):
        assert ring_start({3, 4, 5}, 8) == 3

    def test_wrapped_interval(self):
        assert ring_start({7, 8, 1, 2}, 8) == 7

    def test_full_ring(self):
        assert ring_start(set(range(1, 7)), 6) == 1

    def test_singleton(self):
        assert ring_start({4}, 8) == 4

    def test_non_interval_rejected(self):
        with pytest.raises(ValueError, match="not a circular interval"):
            ring_start({1, 3}, 8)


class TestFromStrategy:
    @pytest.mark.parametrize("name,k", [("overlapping", 3), ("disjoint", 2), ("none", 1)])
    def test_preserves_replica_sets(self, name, k):
        strat = get_strategy(name, 6, k)
        placement = IntervalPlacement.from_strategy(strat)
        for u in range(1, 7):
            assert placement.replicas(u) == strat.replicas(u)
        placement.validate()

    def test_is_a_replication_strategy(self):
        placement = IntervalPlacement.from_strategy(get_strategy("overlapping", 6, 2))
        assert placement.name == "interval"
        assert placement.transfer_matrix().shape == (6, 6)
        assert len(placement.all_sets()) == 6


class TestConstruction:
    def test_home_must_be_inside(self):
        with pytest.raises(ValueError, match="outside its own interval"):
            IntervalPlacement(4, {1: (2, 2), 2: (2, 1), 3: (3, 1), 4: (4, 1)})

    def test_every_home_required(self):
        with pytest.raises(ValueError, match="every home machine"):
            IntervalPlacement(4, {1: (1, 1), 2: (2, 1), 3: (3, 1)})

    def test_k_is_max_size(self):
        p = IntervalPlacement(4, {1: (1, 3), 2: (2, 1), 3: (3, 1), 4: (4, 2)})
        assert p.k == 3


class TestEdits:
    def _uniform(self, m=6, k=2):
        return IntervalPlacement.from_strategy(get_strategy("overlapping", m, k))

    def test_widen_extends_clockwise(self):
        p = self._uniform()
        q = p.widen(2)
        assert q.replicas(2) == p.replicas(2) | {(max(p.replicas(2) - {2}) % 6) + 1}
        assert q.interval(2) == (p.interval(2)[0], p.interval(2)[1] + 1)
        # Value semantics: the original placement is untouched.
        assert p.interval(2)[1] == 2

    def test_widen_wraps_the_ring(self):
        p = self._uniform()
        q = p.widen(6)  # interval (6, 2) = {6, 1} -> {6, 1, 2}
        assert q.replicas(6) == frozenset({6, 1, 2})

    def test_widen_full_ring_noop(self):
        p = IntervalPlacement(3, {1: (1, 3), 2: (1, 3), 3: (1, 3)})
        assert p.widen(1) is p

    def test_narrow_drops_clockwise_last(self):
        p = self._uniform().widen(1)  # {1, 2, 3}
        q = p.narrow(1)
        assert q.replicas(1) == frozenset({1, 2})

    def test_narrow_singleton_noop(self):
        p = IntervalPlacement.from_strategy(get_strategy("none", 4, 1))
        assert p.narrow(2) is p

    def test_shift_rotates(self):
        p = IntervalPlacement(6, {u: (u, 2) for u in range(1, 6)} | {6: (5, 2)})
        q = p.shift(6, 1)  # {5, 6} -> {6, 1}
        assert q.replicas(6) == frozenset({6, 1})

    def test_shift_cannot_evict_home(self):
        p = self._uniform()
        with pytest.raises(ValueError, match="outside its own interval"):
            p.shift(2, 2)  # {2,3} -> {4,5}: home 2 would leave

    def test_edits_stay_interval_structured(self):
        p = self._uniform()
        for u in (1, 3, 6):
            p = p.widen(u)
        p.validate()
        for u in range(1, 7):
            assert is_circular_interval(p.replicas(u), 6)


class TestDiffAndSerialisation:
    def test_diff_lists_changed_homes(self):
        p = IntervalPlacement.from_strategy(get_strategy("overlapping", 6, 2))
        q = p.widen(3).widen(3)
        changes = p.diff(q)
        assert changes == [(3, (3, 2), (3, 4))]
        assert q.diff(p) == [(3, (3, 4), (3, 2))]
        assert p.diff(p) == []

    def test_diff_mismatched_m_rejected(self):
        p = IntervalPlacement.from_strategy(get_strategy("overlapping", 6, 2))
        q = IntervalPlacement.from_strategy(get_strategy("overlapping", 4, 2))
        with pytest.raises(ValueError, match="different m"):
            p.diff(q)

    def test_added_machines_per_home_union(self):
        """Widening adds a machine to *a home's* set even when every
        machine already serves some other home — warmup is owed per
        (machine, home-data) pair, collapsed to the machine level."""
        p = IntervalPlacement.from_strategy(get_strategy("overlapping", 6, 2))
        q = p.widen(2)  # {2,3} -> {2,3,4}
        assert p.added_machines(q) == frozenset({4})
        assert q.added_machines(p) == frozenset()

    def test_round_trip(self):
        p = IntervalPlacement.from_strategy(get_strategy("disjoint", 6, 3)).widen(2)
        q = IntervalPlacement.from_dict(6, p.to_dict())
        assert q == p
        assert hash(q) == hash(p)

    def test_equality(self):
        a = IntervalPlacement.from_strategy(get_strategy("overlapping", 6, 2))
        b = IntervalPlacement.from_strategy(get_strategy("overlapping", 6, 2))
        assert a == b and a is not b
        assert a != a.widen(1)
        assert a != "placement"
