"""End-to-end rebalance harness: the tentpole guarantees.

* adaptive beats both static placements on tail flow under a hotspot
  shift;
* the no-trigger adaptive path is byte-identical to the static run
  (assignments AND metric snapshots — rebalancing that never fires
  leaves no trace);
* a recorded trace replays byte-identically from its own header.
"""

import math
from dataclasses import replace

import pytest

from repro.faults import FaultSchedule
from repro.rebalance import RebalanceConfig, replay_rebalance, run_rebalance
from repro.rebalance.units import compare, default_spec, run as run_unit

CONFIG = RebalanceConfig(cadence=25.0, window=50.0, headroom=0.75, warmup=2.0, max_k=5)


def _spec(n=1500, **kw):
    params = {"m": 12, "n": n, "k": 2, "s": 1.5}
    params.update(kw)
    return default_spec(params)


class TestAdaptiveWins:
    def test_beats_both_statics_on_p99(self):
        spec = _spec()
        static_over = run_rebalance(spec, policy="static", config=CONFIG, seed=0)
        static_dis = run_rebalance(
            replace(spec, strategy="disjoint"), policy="static", config=CONFIG, seed=0
        )
        adaptive = run_rebalance(spec, policy="adaptive", config=CONFIG, seed=0)
        assert adaptive.n_rebalances > 0
        assert adaptive.final_version == adaptive.n_rebalances
        assert adaptive.flow["p99"] < static_over.flow["p99"]
        assert adaptive.flow["p99"] < static_dis.flow["p99"]

    def test_every_change_is_a_versioned_event(self):
        result = run_rebalance(_spec(), policy="adaptive", config=CONFIG, seed=0)
        triggered = [d for d in result.trace.decisions if d.triggered]
        assert len(triggered) == result.n_rebalances
        assert [d.version for d in triggered] == list(range(1, len(triggered) + 1))
        for d in triggered:
            assert d.changes  # a trigger always states what moved

    def test_compare_unit(self):
        out = compare({"m": 12, "n": 1500, "config": CONFIG.to_dict()}, seed=0)
        assert out["adaptive_beats_static_p99"] is True
        assert out["static_overlapping"]["n_rebalances"] == 0
        assert out["adaptive"]["n_rebalances"] > 0

    def test_run_unit(self):
        out = run_unit({"m": 12, "n": 800, "policy": "static"}, seed=3)
        assert out["policy"] == "static" and out["n"] == 800


class TestNoTriggerIdentity:
    def test_digest_matches_static(self):
        """An adaptive run whose threshold never fires takes the exact
        decisions of the static run — byte-identical assignments."""
        spec = _spec(n=800)
        never = replace(CONFIG, headroom=1e9)
        static = run_rebalance(spec, policy="static", config=never, seed=0)
        adaptive = run_rebalance(spec, policy="adaptive", config=never, seed=0)
        assert adaptive.n_rebalances == 0
        assert adaptive.digest == static.digest
        assert adaptive.flow == static.flow

    def test_metrics_carry_no_rebalance_keys(self):
        spec = _spec(n=800)
        never = replace(CONFIG, headroom=1e9)
        adaptive = run_rebalance(spec, policy="adaptive", config=never, seed=0)
        for section in ("counters", "gauges"):
            assert not [k for k in adaptive.metrics[section] if "rebalance" in k]
            assert "placement_version" not in adaptive.metrics[section]
        # ...while a triggering run does roll its counters in.
        hot = run_rebalance(spec, policy="adaptive", config=CONFIG, seed=0)
        if hot.n_rebalances:
            assert hot.metrics["counters"]["rebalance_applied_total"] == hot.n_rebalances


class TestReplay:
    def test_byte_identical(self):
        result = run_rebalance(_spec(n=800), policy="adaptive", config=CONFIG, seed=1)
        fresh, identical = replay_rebalance(result.trace)
        assert identical
        assert fresh.digest == result.digest

    def test_byte_identical_with_faults(self):
        faults = FaultSchedule.build([(2, 30.0, 60.0), (7, 90.0, 120.0)])
        result = run_rebalance(
            _spec(n=800), policy="adaptive", config=CONFIG, seed=1, faults=faults
        )
        assert result.n == 800
        fresh, identical = replay_rebalance(result.trace)
        assert identical
        assert fresh.digest == result.digest


class TestFaults:
    def test_dead_machine_receives_nothing_while_down(self):
        spec = _spec(n=600)
        faults = FaultSchedule.build([(1, 0.0, 1e9)])  # machine 1 never up
        result = run_rebalance(spec, policy="adaptive", config=CONFIG, seed=0, faults=faults)
        assert result.n == 600
        # Flow percentiles are finite and the run placed every task.
        assert math.isfinite(result.flow["max"])

    def test_drain_moves_unstarted_work(self):
        spec = _spec(n=600)
        horizon = 600 / spec.rate.rate(0.0)
        # Kill the pre-shift hot machine: its queue holds unstarted
        # backlog, which must drain through the engine's failure rule.
        faults = FaultSchedule.build([(1, 0.2 * horizon, 0.6 * horizon)])
        with_faults = run_rebalance(spec, policy="static", config=CONFIG, seed=0, faults=faults)
        without = run_rebalance(spec, policy="static", config=CONFIG, seed=0)
        assert with_faults.n_requeued > 0
        assert with_faults.digest != without.digest


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            run_rebalance(_spec(n=10), policy="chaotic")
