"""The LP-driven rebalance control loop."""

import math

import numpy as np
import pytest

from repro.maxload import max_load_lp
from repro.psets.replication import get_strategy
from repro.rebalance import (
    IntervalPlacement,
    PopularityEstimator,
    RebalanceConfig,
    RebalanceController,
)


def _controller(m=6, k=2, **cfg):
    placement = IntervalPlacement.from_strategy(get_strategy("overlapping", m, k))
    defaults = dict(cadence=10.0, window=20.0, headroom=0.8, warmup=1.0)
    defaults.update(cfg)
    return RebalanceController(placement, config=RebalanceConfig(**defaults))


def _feed_hotspot(ctrl, until, rate=8.0, home=1):
    """Concentrate `rate` work per unit time on one home."""
    t, dt = 0.0, 1.0 / rate
    while t < until:
        ctrl.observe(t, home, 1.0)
        t += dt


class TestConfig:
    def test_round_trip(self):
        cfg = RebalanceConfig(cadence=5.0, window=9.0, headroom=0.7, warmup=2.0, max_k=4, low_water=0.2)
        assert RebalanceConfig.from_dict(cfg.to_dict()) == cfg

    def test_defaults_from_empty_dict(self):
        assert RebalanceConfig.from_dict({}) == RebalanceConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"cadence": 0.0},
            {"window": -1.0},
            {"headroom": 0.0},
            {"warmup": -0.1},
            {"max_rounds": 0},
            {"low_water": 0.9},  # must stay below headroom
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RebalanceConfig(**kw)


class TestCadence:
    def test_due_schedule(self):
        ctrl = _controller(cadence=10.0)
        assert not ctrl.due(9.9)
        assert ctrl.due(10.0)
        assert ctrl.next_due == 10.0

    def test_step_advances_past_now(self):
        ctrl = _controller(cadence=10.0)
        ctrl.step(35.0)  # owed checks at 10, 20, 30 collapse into one
        assert ctrl.next_due == 40.0
        assert len(ctrl.decisions) == 1


class TestNoTrigger:
    def test_idle_cluster_holds(self):
        ctrl = _controller()
        d = ctrl.step(10.0)
        assert not d.triggered
        assert d.changes == () and d.added == ()
        assert ctrl.version == 0

    def test_huge_headroom_never_triggers(self):
        ctrl = _controller(headroom=math.inf)
        _feed_hotspot(ctrl, 40.0, rate=12.0)
        before = ctrl.placement
        for t in (10.0, 20.0, 30.0, 40.0):
            assert not ctrl.step(t).triggered
        assert ctrl.placement is before
        assert ctrl.version == 0

    def test_load_under_headroom_holds(self):
        ctrl = _controller(headroom=0.8)
        # Uniform trickle far below capacity.
        for i in range(40):
            ctrl.observe(i * 0.5, 1 + i % 6, 0.1)
        assert not ctrl.step(10.0).triggered


class TestTrigger:
    def test_hotspot_widens_the_hot_home(self):
        ctrl = _controller()
        _feed_hotspot(ctrl, 10.0, rate=8.0, home=1)
        before = ctrl.placement
        d = ctrl.step(10.0)
        assert d.triggered
        assert ctrl.version == 1
        assert d.version == 1
        assert d.lam_star_after is not None and d.lam_star_after > d.lam_star
        # Home 1 (all the work) gained replicas; the placement stays
        # interval-structured.
        assert ctrl.placement.interval(1)[1] > before.interval(1)[1]
        ctrl.placement.validate()
        assert d.changes == tuple(before.diff(ctrl.placement))
        assert set(d.added) == set(before.added_machines(ctrl.placement))

    def test_proposal_improves_lp_capacity(self):
        ctrl = _controller()
        _feed_hotspot(ctrl, 10.0, rate=8.0)
        d = ctrl.step(10.0)
        w = ctrl.estimator.estimate(10.0)
        assert max_load_lp(w, ctrl.placement).lam == pytest.approx(d.lam_star_after)

    def test_max_k_caps_growth(self):
        ctrl = _controller(max_k=3, max_rounds=10)
        _feed_hotspot(ctrl, 10.0, rate=20.0)
        ctrl.step(10.0)
        for u in range(1, 7):
            assert ctrl.placement.interval(u)[1] <= 3

    def test_decisions_accumulate_versions(self):
        ctrl = _controller()
        _feed_hotspot(ctrl, 10.0, rate=8.0)
        ctrl.step(10.0)
        _feed_hotspot(ctrl, 20.0, rate=8.0, home=4)
        ctrl.step(20.0)
        versions = [d.version for d in ctrl.decisions]
        assert versions == sorted(versions)
        assert ctrl.version == versions[-1]


class TestNarrow:
    def test_low_water_narrows_cold_home(self):
        placement = IntervalPlacement(4, {1: (1, 3), 2: (2, 1), 3: (3, 1), 4: (4, 1)})
        ctrl = RebalanceController(
            placement,
            config=RebalanceConfig(cadence=10.0, window=20.0, headroom=0.8, low_water=0.2),
        )
        # A faint uniform trickle: far below low_water * lambda*.
        for i in range(8):
            ctrl.observe(i + 0.5, 1 + i % 4, 0.05)
        d = ctrl.step(10.0)
        if d.triggered:  # narrowing must shrink, never grow
            sizes_before = [placement.interval(u)[1] for u in range(1, 5)]
            sizes_after = [ctrl.placement.interval(u)[1] for u in range(1, 5)]
            assert sum(sizes_after) < sum(sizes_before)

    def test_all_singletons_cannot_narrow(self):
        placement = IntervalPlacement.from_strategy(get_strategy("none", 4, 1))
        ctrl = RebalanceController(
            placement,
            config=RebalanceConfig(cadence=10.0, window=20.0, headroom=0.8, low_water=0.2),
        )
        ctrl.observe(1.0, 1, 0.01)
        assert not ctrl.step(10.0).triggered


class TestPlumbing:
    def test_estimator_m_must_match(self):
        placement = IntervalPlacement.from_strategy(get_strategy("overlapping", 6, 2))
        with pytest.raises(ValueError, match="m="):
            RebalanceController(placement, estimator=PopularityEstimator(4, 10.0))

    def test_deterministic(self):
        def run():
            ctrl = _controller()
            _feed_hotspot(ctrl, 30.0, rate=8.0)
            for t in (10.0, 20.0, 30.0):
                ctrl.step(t)
            return [(d.version, d.triggered, d.lam_star, d.changes) for d in ctrl.decisions]

        assert run() == run()
