"""Unit tests for the seeded protocol chaos proxy.

The proxy's contract: faults land on frame boundaries, every fault is
drawn from a stream seeded by ``(config.seed, conn_id, direction)`` —
so a run is exactly reproducible — and a zero-probability config is a
transparent relay.
"""

import asyncio

import pytest

from repro.chaos import ChaosConfig, ChaosProxy
from repro.serve.protocol import ProtocolError, read_frame, write_frame


class TestChaosConfig:
    def test_defaults_inactive(self):
        config = ChaosConfig()
        assert not config.active

    def test_any_fault_is_active(self):
        assert ChaosConfig(p_drop=0.1).active
        assert ChaosConfig(latency=0.5).active

    @pytest.mark.parametrize("field", ["p_drop", "p_truncate", "p_corrupt", "p_duplicate"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_probability_bounds(self, field, value):
        with pytest.raises(ValueError):
            ChaosConfig(**{field: value})

    def test_probabilities_must_not_exceed_one(self):
        with pytest.raises(ValueError, match="sum"):
            ChaosConfig(p_drop=0.5, p_truncate=0.3, p_corrupt=0.3)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(latency=-1.0)

    def test_json_roundtrip(self):
        config = ChaosConfig(seed=9, p_drop=0.1, p_corrupt=0.05, latency=0.01)
        assert ChaosConfig.from_json(config.to_json()) == config

    def test_unknown_json_field_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig.from_json({"seed": 0, "p_teleport": 0.5})


async def _echo_upstream(tmp):
    """An upstream that echoes every frame back with an ``echo`` mark."""
    upstream_sock = str(tmp / "upstream.sock")

    async def on_connection(reader, writer):
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError:
                    break
                if message is None:
                    break
                await write_frame(writer, {**message, "echo": True})
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_unix_server(on_connection, path=upstream_sock)
    return server, upstream_sock


async def _drive_once(tmp, config, n_frames=40):
    """Pump ``n_frames`` through the proxy; return (acks, proxy stats)."""
    server, upstream_sock = await _echo_upstream(tmp)
    listen_sock = str(tmp / "proxy.sock")
    acks = []
    async with server, ChaosProxy(
        config, upstream_socket=upstream_sock, listen_socket=listen_sock
    ) as proxy:
        i = 0
        while i < n_frames:
            try:
                reader, writer = await asyncio.open_unix_connection(listen_sock)
                while i < n_frames:
                    await write_frame(writer, {"tid": i})
                    response = await asyncio.wait_for(read_frame(reader), 5.0)
                    if response is None:
                        raise ConnectionResetError
                    acks.append((response["tid"], bool(response.get("echo"))))
                    i += 1
                writer.close()
            except (ProtocolError, OSError, asyncio.TimeoutError):
                continue  # reconnect and resend frame i
        stats = proxy.stats()
    return acks, stats


class TestChaosProxy:
    def test_zero_config_is_transparent(self, tmp_path):
        acks, stats = asyncio.run(_drive_once(tmp_path, ChaosConfig(), n_frames=25))
        assert [tid for tid, _ in acks] == list(range(25))
        assert all(echo for _, echo in acks)
        assert stats["connections"] == 1
        assert stats["frames"] == 50  # 25 each way
        for fault in ("dropped", "truncated", "corrupted", "duplicated", "delayed"):
            assert stats[fault] == 0

    def test_same_seed_same_fault_sequence(self, tmp_path):
        config = ChaosConfig(seed=11, p_drop=0.05, p_truncate=0.05, p_corrupt=0.05, p_duplicate=0.1)
        a_dir = tmp_path / "a"
        b_dir = tmp_path / "b"
        a_dir.mkdir()
        b_dir.mkdir()
        acks_a, stats_a = asyncio.run(_drive_once(a_dir, config))
        acks_b, stats_b = asyncio.run(_drive_once(b_dir, config))
        assert stats_a == stats_b
        assert acks_a == acks_b

    def test_different_seed_different_faults(self, tmp_path):
        base = dict(p_drop=0.05, p_truncate=0.05, p_corrupt=0.05, p_duplicate=0.1)
        a_dir = tmp_path / "a"
        b_dir = tmp_path / "b"
        a_dir.mkdir()
        b_dir.mkdir()
        _, stats_a = asyncio.run(_drive_once(a_dir, ChaosConfig(seed=1, **base)))
        _, stats_b = asyncio.run(_drive_once(b_dir, ChaosConfig(seed=2, **base)))
        assert stats_a != stats_b

    def test_faults_do_not_lose_or_reorder_resent_frames(self, tmp_path):
        """Clients that resend after a fault still see every tid once,
        in order — the transport-level half of the no-loss story."""
        config = ChaosConfig(seed=3, p_drop=0.08, p_truncate=0.04, p_corrupt=0.08)
        acks, stats = asyncio.run(_drive_once(tmp_path, config, n_frames=60))
        assert [tid for tid, _ in acks] == list(range(60))
        assert stats["dropped"] + stats["truncated"] + stats["corrupted"] > 0

    def test_endpoint_arguments_validated(self):
        with pytest.raises(ValueError, match="upstream"):
            ChaosProxy(ChaosConfig())
        with pytest.raises(ValueError, match="listen"):
            ChaosProxy(ChaosConfig(), upstream_socket="/tmp/x.sock")
