"""Property tests for invariants every zoo policy must share.

Each registered policy, whatever its internals, must (1) respect
processing-set restrictions, (2) conserve work fault-free, (3) preempt
exactly when it declares itself preemptive, and (4) produce
byte-stable, replayable traces.  Running the whole registry through
one parametrized harness is what keeps the pluggable contract honest.
"""

import pytest
from hypothesis import given, settings

from repro.campaigns.trace import dumps, record, replay_into
from repro.schedulers import get_scheduler, list_schedulers
from repro.simulation import Simulator
from tests.conftest import restricted_unit_instances, unrestricted_instances

ALL_POLICIES = tuple(info["name"] for info in list_schedulers())
SEED = 1234


@pytest.mark.parametrize("policy", ALL_POLICIES)
class TestSharedInvariants:
    @given(inst=restricted_unit_instances(max_m=5, max_n=15))
    @settings(max_examples=15, deadline=None)
    def test_no_task_on_ineligible_machine(self, policy, inst):
        sim = Simulator(get_scheduler(policy, inst.m, seed=SEED))
        sim.add_instance(inst)
        sim.run()
        for t in inst:
            assert sim.assigned_machine[t.tid] in t.eligible(inst.m)

    @given(inst=unrestricted_instances(max_m=4, max_n=15, unit=False))
    @settings(max_examples=15, deadline=None)
    def test_work_conservation_fault_free(self, policy, inst):
        """Every released task completes, and total machine busy time
        equals the total realised service — nothing lost, nothing
        invented, even across preemption splits and setup charges."""
        sim = Simulator(get_scheduler(policy, inst.m, seed=SEED))
        sim.add_instance(inst)
        res = sim.run()
        assert res.n_completed == len(inst.tasks)
        sched = sim.scheduler
        total_service = sum(
            sched.service_of(t.tid, t.proc) for t in inst.tasks
        )
        total_busy = sum(ms.busy_time for ms in sim.machines.values())
        assert total_busy == pytest.approx(total_service)

    @given(inst=unrestricted_instances(max_m=4, max_n=15, unit=False))
    @settings(max_examples=15, deadline=None)
    def test_preemption_matches_declaration(self, policy, inst):
        sched = get_scheduler(policy, inst.m, seed=SEED)
        sim = Simulator(sched)
        sim.add_instance(inst)
        res = sim.run()
        if not sched.preemptive:
            assert res.n_preempted == 0

    @given(inst=restricted_unit_instances(max_m=4, max_n=12))
    @settings(max_examples=10, deadline=None)
    def test_trace_replay_is_byte_stable(self, policy, inst):
        """Two fresh same-seed runs over the same workload record
        byte-identical traces; and when the policy records true
        processing times (service == proc), replaying the trace's own
        workload reproduces the placements exactly."""
        first = get_scheduler(policy, inst.m, seed=SEED)
        first.run(inst)
        trace = record(first.schedule(), scheduler=first.name)
        fresh = get_scheduler(policy, inst.m, seed=SEED)
        again = record(fresh.run(inst), scheduler=fresh.name)
        assert dumps(again) == dumps(trace)
        # Service-transforming policies (setup charges, speed scaling)
        # record *realised* times, so their trace workload is not the
        # original instance; exact replay is only promised otherwise.
        if tuple(t.proc for t in trace.instance()) == tuple(
            t.proc for t in inst
        ):
            replayer = get_scheduler(policy, inst.m, seed=SEED)
            replayed = replay_into(replayer, trace)
            assert replayed.same_placements(trace.schedule(), tol=0.0)
