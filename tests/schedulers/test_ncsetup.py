"""NC-Setup: non-clairvoyant dispatch with per-machine setup times."""

import pytest

from repro.core import Instance, Task
from repro.schedulers import NCSetup, get_scheduler
from repro.serve.dispatcher import Dispatcher
from repro.simulation import Simulator


def _task(tid, release, proc, key=None, machines=None):
    return Task(
        tid=tid,
        release=float(release),
        proc=float(proc),
        key=key,
        machines=frozenset(machines) if machines else None,
    )


class TestSetupModel:
    def test_cold_machine_pays_setup(self):
        s = NCSetup(2, setup=1.5)
        t = _task(0, 0, 2.0, key=7)
        machine, ties = s.choose(t)
        assert machine == 1 and ties == frozenset({1, 2})
        assert s.exec_time(t, machine) == pytest.approx(3.5)
        assert s.setup_paid == pytest.approx(1.5)
        assert s.is_warm(1, t)

    def test_warm_machine_is_free(self):
        s = NCSetup(2, setup=1.0)
        a = _task(0, 0, 2.0, key=7)
        s.exec_time(a, 1)
        b = _task(1, 5, 2.0, key=7)
        assert s.exec_time(b, 1) == pytest.approx(2.0)
        assert s.setup_paid == pytest.approx(1.0)

    def test_warmth_is_per_key(self):
        s = NCSetup(1, setup=1.0)
        s.exec_time(_task(0, 0, 1.0, key=7), 1)
        # a different key on the same machine is still cold
        assert s.exec_time(_task(1, 2, 1.0, key=8), 1) == pytest.approx(2.0)
        assert s.setup_paid == pytest.approx(2.0)

    def test_unkeyed_tasks_share_one_warmup(self):
        s = NCSetup(1, setup=1.0)
        s.exec_time(_task(0, 0, 1.0), 1)
        assert s.exec_time(_task(1, 2, 1.0), 1) == pytest.approx(1.0)

    def test_choose_prefers_warm_machine(self):
        s = NCSetup(2, setup=1.0)
        s.exec_time(_task(0, 0, 1.0, key=7), 2)  # warm machine 2 for key 7
        machine, _ = s.choose(_task(1, 5, 1.0, key=7))
        # counts equal (0, 0); machine 1 scores 0+setup, machine 2 scores 0
        assert machine == 2

    def test_outstanding_count_beats_warmth(self):
        s = NCSetup(2, setup=0.5)
        # two in-flight requests warm machine 1 but load it up
        s.exec_time(_task(0, 0, 4.0, key=7), 1)
        s.exec_time(_task(1, 0, 4.0, key=7), 1)
        machine, _ = s.choose(_task(2, 1, 1.0, key=7))
        # machine 1: q=2 + 0; machine 2: q=0 + 0.5 -> machine 2 wins
        assert machine == 2

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            NCSetup(2, setup=-1.0)

    def test_non_clairvoyant_choice_ignores_proc(self):
        """The same arrival pattern with wildly different service times
        yields identical placements — the policy never reads proc to
        decide."""
        choices = []
        for procs in ((1.0, 1.0, 1.0), (9.0, 0.1, 5.0)):
            s = NCSetup(3, setup=1.0)
            picked = []
            for tid, p in enumerate(procs):
                t = _task(tid, tid * 0.1, p, key=tid)
                machine, _ = s.choose(t)
                s.exec_time(t, machine)
                picked.append(machine)
            choices.append(picked)
        assert choices[0] == choices[1]


class TestEngineIntegration:
    def test_flows_include_setup(self):
        inst = Instance(m=1, tasks=(_task(0, 0, 2.0, key=7),))
        sim = Simulator(NCSetup(1, setup=1.0))
        sim.add_instance(inst)
        res = sim.run()
        # realised service is 3.0 (2 proc + 1 warmup)
        assert res.max_flow == pytest.approx(3.0)
        assert res.makespan == pytest.approx(3.0)

    def test_second_hit_on_warm_key_is_fast(self):
        inst = Instance(
            m=1,
            tasks=(_task(0, 0, 2.0, key=7), _task(1, 4, 2.0, key=7)),
        )
        sim = Simulator(NCSetup(1, setup=1.0))
        sim.add_instance(inst)
        res = sim.run()
        assert sim.completions[0] == pytest.approx(3.0)
        assert sim.completions[1] == pytest.approx(6.0)  # no second warmup
        assert sim.scheduler.setup_paid == pytest.approx(1.0)
        assert res.mean_flow == pytest.approx((3.0 + 2.0) / 2)

    def test_registry_flags(self):
        s = get_scheduler("nc-setup", 2)
        assert s.clairvoyant is False
        assert s.preemptive is False
        assert s.name == "NC-Setup(s=1)"


class TestRebalanceIntegration:
    def test_apply_placement_chills_added_replicas(self):
        sched = NCSetup(2, setup=1.0)
        disp = Dispatcher(sched)
        d0 = disp.submit(_task(0, 0, 2.0, key=7, machines={1, 2}))
        warm_machine = d0.machine
        assert sched.is_warm(warm_machine, _task(0, 0, 1.0, key=7))
        # a rebalance widens key 7's replica set onto the warm machine:
        # its cache is declared cold again
        other = 2 if warm_machine == 1 else 1
        disp.apply_placement(
            {7: frozenset({other})},
            {7: frozenset({other, warm_machine})},
            now=10.0,
        )
        assert not sched.is_warm(warm_machine, _task(0, 0, 1.0, key=7))
        # and the next hit pays the warmup again
        paid = sched.setup_paid
        disp.submit(_task(1, 10.0, 2.0, key=7, machines={warm_machine}))
        assert sched.setup_paid == pytest.approx(paid + 1.0)

    def test_unchanged_sets_leave_warm_state_alone(self):
        sched = NCSetup(2, setup=1.0)
        disp = Dispatcher(sched)
        disp.submit(_task(0, 0, 2.0, key=7, machines={1}))
        disp.apply_placement(
            {7: frozenset({1})}, {7: frozenset({1})}, now=5.0
        )
        assert sched.is_warm(1, _task(0, 0, 1.0, key=7))
