"""Speed-EFT: the related-machines Greedy promoted to a zoo policy."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import EFT, Instance, Task
from repro.related import SpeedCluster
from repro.schedulers import SpeedEFT, get_scheduler
from repro.simulation import Simulator
from tests.conftest import unrestricted_instances


class TestConstruction:
    def test_default_two_tier(self):
        s = SpeedEFT(8)
        assert list(s.cluster.speeds) == [4.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        assert s.name == "Speed-EFT"

    def test_small_m_keeps_one_fast_machine(self):
        s = SpeedEFT(2)
        assert list(s.cluster.speeds) == [4.0, 1.0]

    def test_explicit_speeds(self):
        s = SpeedEFT(3, speeds=[1.0, 2.0, 4.0])
        assert s.exec_time(Task(tid=0, release=0.0, proc=4.0), 3) == pytest.approx(1.0)

    def test_cluster_object(self):
        s = SpeedEFT(4, speeds=SpeedCluster.geometric(4))
        assert s.cluster.speed(4) == pytest.approx(8.0)

    def test_m_mismatch_rejected(self):
        with pytest.raises(ValueError, match="m="):
            SpeedEFT(3, speeds=[1.0, 2.0])


class TestPlacement:
    def test_fast_machine_wins_finish_time(self):
        # work 4: machine 1 (speed 4) finishes at 1, the others at 4.
        s = SpeedEFT(4)
        machine, ties = s.choose(Task(tid=0, release=0.0, proc=4.0))
        assert machine == 1
        assert ties == frozenset({1})

    def test_loaded_fast_machine_loses_to_idle_slow_one(self):
        s = SpeedEFT(2, speeds=[4.0, 1.0])
        s.run(Instance(m=2, tasks=(Task(tid=0, release=0.0, proc=40.0),)))
        # fast machine busy until 10; a small task at 1 finishes at
        # 10 + 0.25 there vs 1 + 1 on the idle slow machine
        machine, _ = s.choose(Task(tid=1, release=1.0, proc=1.0))
        assert machine == 2

    @given(unrestricted_instances(max_m=4, max_n=20, unit=False))
    @settings(max_examples=30, deadline=None)
    def test_unit_speeds_coincide_with_eft_min(self, inst):
        speed = SpeedEFT(inst.m, speeds=SpeedCluster.identical(inst.m)).run(inst)
        eft = EFT(inst.m, tiebreak="min").run(inst)
        assert speed.same_placements(eft, tol=0.0)


class TestEngineIntegration:
    def test_simulated_flows_use_speed_scaled_service(self):
        inst = Instance(m=2, tasks=(Task(tid=0, release=0.0, proc=4.0),))
        sim = Simulator(SpeedEFT(2, speeds=[4.0, 1.0]))
        sim.add_instance(inst)
        res = sim.run()
        assert res.max_flow == pytest.approx(1.0)  # 4 work / speed 4
        assert res.makespan == pytest.approx(1.0)

    def test_two_tier_beats_speed_blind_order(self):
        """On a two-tier fleet the speed-aware policy drains a burst
        faster than round-robin-style speed-blind spreading would: all
        work lands where it finishes earliest."""
        tasks = tuple(
            Task(tid=i, release=0.0, proc=4.0) for i in range(4)
        )
        sim = Simulator(SpeedEFT(2, speeds=[4.0, 1.0]))
        sim.add_instance(Instance(m=2, tasks=tasks))
        res = sim.run()
        # speeds 4 and 1: greedy puts three on the fast machine
        # (finishes 1, 2, 3) and one on the slow (finishes 4)
        assert res.makespan == pytest.approx(4.0)
        assert res.max_flow == pytest.approx(4.0)

    def test_registry_flags(self):
        s = get_scheduler("speed-eft", 8)
        assert s.preemptive is False
        assert s.clairvoyant is True
        assert type(s.cluster) is SpeedCluster
        assert np.count_nonzero(s.cluster.speeds == 4.0) == 2
