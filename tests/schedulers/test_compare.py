"""The compare-schedulers grid: determinism, traces, campaign units."""

import pytest

from repro.campaigns.runner import run_campaign
from repro.campaigns.spec import get_unit_kind
from repro.campaigns.trace import load as load_trace
from repro.schedulers import CompareConfig, compare_cell, render_table, run_compare
from repro.schedulers.compare import DEFAULT_POLICIES, sanity_check
from repro.schedulers.units import (
    COMPARE_UNIT_KIND,
    build_compare_campaign,
    compare_unit,
)

SMALL = CompareConfig(m=4, n=60, k=2, loads=(0.8,), seed=1)


class TestDeterminism:
    def test_identical_configs_identical_output(self):
        a = run_compare(SMALL)
        b = run_compare(SMALL)
        assert a["rows"] == b["rows"]
        assert a["text"] == b["text"]

    def test_rows_cover_grid_in_order(self):
        out = run_compare(SMALL)
        assert [(r["policy"], r["load"]) for r in out["rows"]] == [
            (p, 0.8) for p in DEFAULT_POLICIES
        ]
        for row in out["rows"]:
            assert row["n_completed"] == SMALL.n
            assert 0.0 < row["utilization"] <= 1.0

    def test_policies_see_the_same_instance(self):
        """Every cell runs the identical seeded workload: fault-free,
        work-conserving policies on identical machines finish the same
        total work, so n_completed agrees across the whole grid."""
        config = CompareConfig(m=4, n=60, k=2, loads=(0.8,), seed=1, faults=False)
        out = run_compare(config)
        assert {r["n_completed"] for r in out["rows"]} == {60}

    def test_seed_changes_output(self):
        a = run_compare(SMALL)
        b = run_compare(CompareConfig(m=4, n=60, k=2, loads=(0.8,), seed=4))
        assert a["rows"] != b["rows"]

    def test_only_preemptive_policies_preempt(self):
        out = run_compare(SMALL)
        for row in out["rows"]:
            if row["policy"] != "srpt-ps":
                assert row["n_preempted"] == 0

    def test_faults_actually_fire(self):
        out = run_compare(SMALL)
        assert any(r["n_requeued"] > 0 for r in out["rows"])


class TestSanity:
    def test_srpt_at_most_eft_and_line_greppable(self):
        out = run_compare(SMALL)
        s = out["sanity"]
        assert s["ok"] is True
        assert s["srpt_mean_flow"] <= s["eft_mean_flow"] + 1e-9
        assert "sanity identical-machines fault-free" in out["text"]
        assert out["text"].rstrip().endswith("OK")

    def test_sanity_is_fault_free(self):
        # same instance, faults on/off: the sanity numbers must not move
        with_faults = sanity_check(SMALL)
        without = sanity_check(
            CompareConfig(m=4, n=60, k=2, loads=(0.8,), seed=1, faults=False)
        )
        assert with_faults == without


class TestTable:
    def test_renders_all_rows_fixed_width(self):
        out = run_compare(SMALL)
        lines = out["table"].splitlines()
        assert len(lines) == 2 + len(out["rows"])  # header + rule + rows
        assert lines[0].startswith("load")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_stable_bytes_for_equal_rows(self):
        rows = run_compare(SMALL)["rows"]
        assert render_table(rows) == render_table([dict(r) for r in rows])


class TestTraces:
    def test_cells_emit_replayable_traces(self, tmp_path):
        row = compare_cell(SMALL, "srpt-ps", 0.8, trace_dir=tmp_path)
        path = tmp_path / "compare_srpt-ps_load0.8.trace.jsonl"
        assert row["trace"] == str(path)
        trace = load_trace(path)
        assert trace.scheduler == "SRPT-PS"
        assert trace.meta["experiment"] == "compare-schedulers"
        sched = trace.schedule()  # validates placements
        assert len(sched) == SMALL.n

    def test_trace_bytes_stable_across_runs(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        compare_cell(SMALL, "nc-setup", 0.8, trace_dir=tmp_path / "a")
        compare_cell(SMALL, "nc-setup", 0.8, trace_dir=tmp_path / "b")
        name = "compare_nc-setup_load0.8.trace.jsonl"
        assert (tmp_path / "a" / name).read_bytes() == (
            tmp_path / "b" / name
        ).read_bytes()


class TestCampaignUnits:
    def test_unit_kind_is_importable(self):
        assert get_unit_kind(COMPARE_UNIT_KIND) is compare_unit

    def test_unit_matches_inline_cell(self):
        params = {"policy": "srpt-ps", "load": 0.8, "m": 4, "n": 60, "k": 2}
        assert compare_unit(params, seed=1) == compare_cell(SMALL, "srpt-ps", 0.8)

    def test_campaign_runs_the_grid(self):
        spec = build_compare_campaign(SMALL)
        assert [u.label for u in spec.units] == [
            f"{p}@0.8" for p in DEFAULT_POLICIES
        ]
        result = run_campaign(spec)
        assert result.n_failed == 0
        inline = run_compare(SMALL)["rows"]
        by_policy = {r["policy"]: r for r in result.results()}
        for row in inline:
            unit_row = dict(by_policy[row["policy"]])
            assert unit_row == row

    def test_campaign_spec_is_deterministic(self):
        a = build_compare_campaign(SMALL)
        b = build_compare_campaign(SMALL)
        assert a.spec_hash() == b.spec_hash()
        assert a.unit_hashes() == b.unit_hashes()
