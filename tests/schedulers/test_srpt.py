"""SRPT-PS: EFT-Min dispatch + preemptive SRPT sequencing."""

import pytest
from hypothesis import given, settings

from repro.core import EFT, Instance
from repro.schedulers import SRPTPS, get_scheduler
from repro.simulation import Simulator
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestDispatchEquivalence:
    @given(unrestricted_instances(max_m=4, max_n=20, unit=False))
    @settings(max_examples=30, deadline=None)
    def test_placements_match_eft_min(self, inst):
        """Machine binding is exactly EFT-Min's; only on-machine order
        differs.  The analytic schedule is therefore identical."""
        srpt = SRPTPS(inst.m).run(inst)
        eft = EFT(inst.m, tiebreak="min").run(inst)
        assert srpt.same_placements(eft, tol=0.0)

    @given(restricted_unit_instances(max_m=5, max_n=18))
    @settings(max_examples=30, deadline=None)
    def test_restricted_sets_respected(self, inst):
        sched = SRPTPS(inst.m).run(inst)
        sched.validate()
        for t in inst:
            assert sched.machine_of(t.tid) in t.eligible(inst.m)


class TestMeanFlowOrdering:
    @given(unrestricted_instances(max_m=3, max_n=18, unit=False))
    @settings(max_examples=40, deadline=None)
    def test_simulated_mean_flow_at_most_eft(self, inst):
        """Per-machine preemptive SRPT is optimal for sum of completion
        times, and SRPT-PS shares EFT-Min's per-machine task sets, so
        fault-free its mean flow is never worse."""
        flows = []
        for policy in ("srpt-ps", "eft-min"):
            sim = Simulator(get_scheduler(policy, inst.m))
            sim.add_instance(inst)
            flows.append(sim.run().mean_flow)
        srpt_flow, eft_flow = flows
        assert srpt_flow <= eft_flow + 1e-9


class TestPreemptKey:
    def test_orders_by_remaining_then_age(self):
        from repro.core import Task

        a = Task(tid=0, release=0.0, proc=5.0)
        b = Task(tid=1, release=1.0, proc=5.0)
        key = SRPTPS.preempt_key
        assert key(a, 1.0, now=2.0) < key(b, 2.0, now=2.0)  # less remaining wins
        assert key(a, 2.0, now=2.0) < key(b, 2.0, now=2.0)  # tie: earlier release

    def test_engine_counts_preemptions(self):
        from repro.core import Task

        inst = Instance(
            m=1,
            tasks=(
                Task(tid=0, release=0.0, proc=4.0),
                Task(tid=1, release=1.0, proc=1.0),
            ),
        )
        sim = Simulator(SRPTPS(1))
        sim.add_instance(inst)
        assert sim.run().n_preempted == 1

    def test_registry_flags(self):
        s = get_scheduler("srpt-ps", 2)
        assert s.preemptive is True
        assert s.clairvoyant is True
        assert s.name == "SRPT-PS"


class TestAnalyticBooks:
    @given(unrestricted_instances(max_m=4, max_n=15, unit=False))
    @settings(max_examples=20, deadline=None)
    def test_completions_books_match_engine_horizons(self, inst):
        """Work conservation per machine: re-sequencing never moves a
        busy period, so the analytic completion horizon of each machine
        equals the engine's last completion on it."""
        sim = Simulator(SRPTPS(inst.m))
        sim.add_instance(inst)
        res = sim.run()
        assert res.makespan == pytest.approx(
            max(sim.scheduler.completions.values())
        )
