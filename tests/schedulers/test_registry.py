"""The policy registry: resolution, canonicalisation, contract checks."""

import pytest

from repro.core import EFT
from repro.core.dispatch import ImmediateDispatchScheduler
from repro.schedulers import (
    NCSetup,
    SRPTPS,
    SpeedEFT,
    canonical_name,
    check_policy,
    get_scheduler,
    list_schedulers,
    register,
)


class TestResolution:
    def test_all_builtins_resolve(self):
        names = [info["name"] for info in list_schedulers()]
        assert {"eft-min", "eft-max", "eft-rand", "least-work", "round-robin",
                "random", "lor", "c3", "srpt-ps", "nc-setup", "speed-eft"} <= set(names)
        for name in names:
            sched = get_scheduler(name, 4, seed=1)
            assert isinstance(sched, ImmediateDispatchScheduler)
            assert sched.m == 4

    def test_zoo_classes(self):
        assert type(get_scheduler("srpt-ps", 3)) is SRPTPS
        assert type(get_scheduler("nc-setup", 3)) is NCSetup
        assert type(get_scheduler("speed-eft", 3)) is SpeedEFT
        assert type(get_scheduler("eft-min", 3)) is EFT

    def test_canonicalisation(self):
        assert canonical_name("SRPT_PS") == "srpt-ps"
        assert canonical_name("EFT-Min") == "eft-min"
        assert canonical_name("LeastWork") == "least-work"
        assert canonical_name("RoundRobin") == "round-robin"
        for spelling in ("SRPT-PS", "srpt", "Srpt_Ps"):
            assert type(get_scheduler(spelling, 2)) is SRPTPS

    def test_recorded_display_names_round_trip(self):
        """Every policy's trace-header spelling resolves back to it."""
        for info in list_schedulers():
            sched = get_scheduler(info["name"], 3, seed=0)
            again = get_scheduler(getattr(sched, "name"), 3, seed=0)
            assert type(again) is type(sched)

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            get_scheduler("fifo-deluxe", 4)

    def test_flags_reported(self):
        by_name = {info["name"]: info for info in list_schedulers()}
        assert by_name["srpt-ps"]["preemptive"] is True
        assert by_name["eft-min"]["preemptive"] is False
        assert by_name["nc-setup"]["clairvoyant"] is False
        assert by_name["lor"]["clairvoyant"] is False
        assert by_name["eft-min"]["clairvoyant"] is True


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("eft-min", lambda m, seed: EFT(m), cls=EFT)

    def test_contract_rejects_non_dispatch_class(self):
        class NotAScheduler:
            pass

        with pytest.raises(TypeError, match="ImmediateDispatchScheduler"):
            check_policy(NotAScheduler)

    def test_contract_rejects_preemptive_without_key(self):
        class Broken(EFT):
            preemptive = True

        with pytest.raises(TypeError, match="preempt_key"):
            check_policy(Broken)

    def test_contract_accepts_zoo(self):
        for cls in (EFT, SRPTPS, NCSetup, SpeedEFT):
            check_policy(cls)


class TestMakeSchedulerDelegation:
    def test_campaigns_make_scheduler_resolves_zoo_names(self):
        from repro.campaigns.trace import make_scheduler

        assert type(make_scheduler("srpt-ps", 4)) is SRPTPS
        assert type(make_scheduler("nc-setup", 4)) is NCSetup
        assert type(make_scheduler("speed-eft", 4)) is SpeedEFT
        # legacy spellings still work
        assert type(make_scheduler("EFT-Min", 4)) is EFT
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("nope", 4)
