"""Unit tests for the exact unit-task optimum."""

import pytest
from hypothesis import given, settings

from repro.core import Instance, eft_schedule
from repro.offline import optimal_unit_fmax, optimal_unit_schedule, unit_feasible_with_flow
from tests.conftest import restricted_unit_instances


class TestFeasibility:
    def test_flow_one_when_spread_possible(self):
        inst = Instance.build(2, releases=[0, 0], procs=1.0)
        assert unit_feasible_with_flow(inst, 1) is not None

    def test_flow_one_impossible_when_stacked(self):
        inst = Instance.build(1, releases=[0, 0], procs=1.0)
        assert unit_feasible_with_flow(inst, 1) is None
        assert unit_feasible_with_flow(inst, 2) is not None

    def test_respects_processing_sets(self):
        inst = Instance.build(2, releases=[0, 0], machine_sets=[{1}, {1}])
        assert unit_feasible_with_flow(inst, 1) is None

    def test_nonpositive_flow(self):
        inst = Instance.build(1, releases=[0], procs=1.0)
        assert unit_feasible_with_flow(inst, 0) is None

    def test_monotone_in_flow(self):
        inst = Instance.build(
            2, releases=[0, 0, 0, 1], machine_sets=[{1}, {1, 2}, {2}, {1}]
        )
        feasible = [unit_feasible_with_flow(inst, f) is not None for f in range(1, 6)]
        # once feasible, always feasible
        assert feasible == sorted(feasible)

    def test_rejects_non_unit(self):
        inst = Instance.build(1, releases=[0], procs=[2.0])
        with pytest.raises(ValueError, match="p_i = 1"):
            unit_feasible_with_flow(inst, 3)

    def test_rejects_fractional_release(self):
        inst = Instance.build(1, releases=[0.5], procs=1.0)
        with pytest.raises(ValueError, match="integral"):
            unit_feasible_with_flow(inst, 3)


class TestOptimum:
    def test_known_small_value(self):
        # 3 tasks at time 0 on 1 machine: OPT flow = 3
        inst = Instance.build(1, releases=[0, 0, 0], procs=1.0)
        assert optimal_unit_fmax(inst) == 3

    def test_restriction_raises_opt(self):
        free = Instance.build(2, releases=[0, 0], procs=1.0)
        pinned = Instance.build(2, releases=[0, 0], machine_sets=[{1}, {1}])
        assert optimal_unit_fmax(free) == 1
        assert optimal_unit_fmax(pinned) == 2

    def test_empty_instance(self):
        fmax, sched = optimal_unit_schedule(Instance(m=2, tasks=()))
        assert fmax == 0

    def test_schedule_witnesses_value(self):
        inst = Instance.build(
            3, releases=[0, 0, 0, 1, 1], machine_sets=[{1, 2}, {2, 3}, {1}, {3}, {1, 2}]
        )
        fmax, sched = optimal_unit_schedule(inst)
        sched.validate()
        assert sched.max_flow == fmax

    @given(restricted_unit_instances(max_m=4, max_n=10))
    @settings(max_examples=40, deadline=None)
    def test_opt_never_exceeds_eft(self, inst):
        """OPT <= any feasible online schedule's value."""
        opt = optimal_unit_fmax(inst)
        online = eft_schedule(inst, tiebreak="min").max_flow
        assert opt <= online + 1e-9

    @given(restricted_unit_instances(max_m=4, max_n=8))
    @settings(max_examples=30, deadline=None)
    def test_opt_at_least_congestion_bound(self, inst):
        """Tasks restricted to one machine force flow >= their count
        when released together."""
        opt = optimal_unit_fmax(inst)
        # count simultaneous singleton tasks per (machine, release)
        from collections import Counter

        c = Counter()
        for t in inst:
            ms = t.eligible(inst.m)
            if len(ms) == 1:
                c[(next(iter(ms)), t.release)] += 1
        if c:
            assert opt >= max(c.values())
