"""Tests for explicit preemptive timetable extraction."""

import pytest
from hypothesis import given, settings

from repro.core import Instance
from repro.offline import optimal_preemptive_fmax
from repro.offline.preemptive_schedule import (
    optimal_preemptive_pieces,
    preemptive_schedule_pieces,
    validate_pieces,
)
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestPieces:
    def test_empty(self):
        assert preemptive_schedule_pieces(Instance(m=2, tasks=()), 1.0) == []

    def test_infeasible_returns_none(self):
        inst = Instance.build(1, releases=[0, 0], procs=[2.0, 2.0])
        assert preemptive_schedule_pieces(inst, 3.0) is None

    def test_mcnaughton_case(self):
        """3 tasks of length 2 on 2 machines, F = 3: the wrap-around
        schedule must split at least one task across machines."""
        inst = Instance.build(2, releases=[0, 0, 0], procs=2.0)
        pieces = preemptive_schedule_pieces(inst, 3.0)
        assert pieces is not None
        validate_pieces(inst, pieces, 3.0)
        # some task runs on two machines (in disjoint time slices)
        machines_per_task = {}
        for p in pieces:
            machines_per_task.setdefault(p.tid, set()).add(p.machine)
        assert any(len(ms) > 1 for ms in machines_per_task.values())

    def test_restricted_case(self):
        inst = Instance.build(
            2, releases=[0, 0, 1], procs=[2.0, 1.0, 1.0], machine_sets=[{1}, {1, 2}, {2}]
        )
        f = optimal_preemptive_fmax(inst)
        pieces = preemptive_schedule_pieces(inst, f + 1e-6)
        assert pieces is not None
        validate_pieces(inst, pieces, f + 1e-5)

    def test_optimal_wrapper(self):
        inst = Instance.build(2, releases=[0, 0, 0], procs=2.0)
        value, pieces = optimal_preemptive_pieces(inst)
        assert value == pytest.approx(3.0, abs=1e-4)
        validate_pieces(inst, pieces, value + 1e-4)

    @given(unrestricted_instances(max_m=3, max_n=8))
    @settings(max_examples=20, deadline=None)
    def test_pieces_feasible_at_optimum(self, inst):
        f = optimal_preemptive_fmax(inst)
        pieces = preemptive_schedule_pieces(inst, f + 1e-5)
        assert pieces is not None
        validate_pieces(inst, pieces, f + 1e-4)

    @given(restricted_unit_instances(max_m=3, max_n=8))
    @settings(max_examples=20, deadline=None)
    def test_pieces_feasible_restricted(self, inst):
        f = optimal_preemptive_fmax(inst)
        pieces = preemptive_schedule_pieces(inst, f + 1e-5)
        assert pieces is not None
        validate_pieces(inst, pieces, f + 1e-4)


class TestValidator:
    def _base(self):
        inst = Instance.build(1, releases=[0], procs=[1.0])
        return inst

    def test_rejects_missing_work(self):
        from repro.offline.preemptive_schedule import Piece

        inst = self._base()
        with pytest.raises(ValueError, match="work"):
            validate_pieces(inst, [Piece(0, 1, 0.0, 0.5)], 2.0)

    def test_rejects_early_start(self):
        from repro.offline.preemptive_schedule import Piece

        inst = Instance.build(1, releases=[1.0], procs=[1.0])
        with pytest.raises(ValueError, match="before its release"):
            validate_pieces(inst, [Piece(0, 1, 0.0, 1.0)], 5.0)

    def test_rejects_deadline_miss(self):
        from repro.offline.preemptive_schedule import Piece

        inst = self._base()
        with pytest.raises(ValueError, match="deadline"):
            validate_pieces(inst, [Piece(0, 1, 5.0, 6.0)], 2.0)

    def test_rejects_overlap(self):
        from repro.offline.preemptive_schedule import Piece

        inst = Instance.build(1, releases=[0, 0], procs=[1.0, 1.0])
        pieces = [Piece(0, 1, 0.0, 1.0), Piece(1, 1, 0.5, 1.5)]
        with pytest.raises(ValueError, match="overlaps"):
            validate_pieces(inst, pieces, 5.0)

    def test_rejects_ineligible(self):
        from repro.offline.preemptive_schedule import Piece

        inst = Instance.build(2, releases=[0], machine_sets=[{1}])
        with pytest.raises(ValueError, match="ineligible"):
            validate_pieces(inst, [Piece(0, 2, 0.0, 1.0)], 5.0)
