"""Hopcroft–Karp vs networkx (property-based cross-check)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline import hopcroft_karp, maximum_matching_size


def nx_matching_size(adjacency) -> int:
    g = nx.Graph()
    left = [("L", u) for u in adjacency]
    g.add_nodes_from(left, bipartite=0)
    for u, nbrs in adjacency.items():
        for v in nbrs:
            g.add_node(("R", v), bipartite=1)
            g.add_edge(("L", u), ("R", v))
    if g.number_of_edges() == 0:
        return 0
    match = nx.bipartite.maximum_matching(g, top_nodes=left)
    return len(match) // 2


@st.composite
def bipartite_graphs(draw):
    n_left = draw(st.integers(0, 12))
    n_right = draw(st.integers(1, 12))
    adjacency = {}
    for u in range(n_left):
        nbrs = draw(st.lists(st.integers(0, n_right - 1), max_size=6, unique=True))
        adjacency[u] = nbrs
    return adjacency


class TestHopcroftKarp:
    def test_simple_perfect(self):
        adj = {0: [10, 11], 1: [10], 2: [11, 12]}
        match = hopcroft_karp(adj)
        assert len(match) == 3
        assert len(set(match.values())) == 3

    def test_bottleneck(self):
        adj = {0: [10], 1: [10], 2: [10]}
        assert maximum_matching_size(adj) == 1

    def test_empty(self):
        assert hopcroft_karp({}) == {}
        assert hopcroft_karp({0: []}) == {}

    def test_matching_is_consistent(self):
        adj = {0: [10, 11], 1: [11, 12], 2: [12, 10]}
        match = hopcroft_karp(adj)
        for u, v in match.items():
            assert v in adj[u]
        assert len(set(match.values())) == len(match)

    def test_augmenting_path_needed(self):
        """Greedy would match 0-10, leaving 1 unmatched; HK must find
        the augmenting path 1-10-0-11."""
        adj = {0: [10, 11], 1: [10]}
        assert maximum_matching_size(adj) == 2

    @given(bipartite_graphs())
    @settings(max_examples=120, deadline=None)
    def test_size_matches_networkx(self, adjacency):
        ours = maximum_matching_size(adjacency)
        theirs = nx_matching_size(adjacency)
        assert ours == theirs

    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_valid_matching_on_random(self, adjacency):
        match = hopcroft_karp(adjacency)
        for u, v in match.items():
            assert v in adjacency[u]
        assert len(set(match.values())) == len(match)
