"""Tests for the assignment-based sum-flow optima."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Instance, eft_schedule
from repro.offline import (
    optimal_unit_fmax,
    optimal_unit_sum_flow,
    optimal_unit_weighted_flow,
)
from tests.conftest import restricted_unit_instances


class TestSumFlow:
    def test_simple_stack(self):
        # 3 simultaneous unit tasks on 1 machine: flows 1+2+3 = 6
        inst = Instance.build(1, releases=[0, 0, 0], procs=1.0)
        total, sched = optimal_unit_sum_flow(inst)
        assert total == 6.0
        sched.validate()

    def test_spreading_beats_stacking(self):
        inst = Instance.build(2, releases=[0, 0], procs=1.0)
        total, _ = optimal_unit_sum_flow(inst)
        assert total == 2.0  # one per machine

    def test_respects_processing_sets(self):
        inst = Instance.build(2, releases=[0, 0], machine_sets=[{1}, {1}])
        total, sched = optimal_unit_sum_flow(inst)
        assert total == 3.0
        assert {sched.machine_of(0), sched.machine_of(1)} == {1}

    def test_empty(self):
        total, _ = optimal_unit_sum_flow(Instance(m=2, tasks=()))
        assert total == 0.0

    def test_rejects_non_unit(self):
        inst = Instance.build(1, releases=[0], procs=[2.0])
        with pytest.raises(ValueError, match="p_i = 1"):
            optimal_unit_sum_flow(inst)

    @given(restricted_unit_instances(max_m=3, max_n=8))
    @settings(max_examples=25, deadline=None)
    def test_lower_bounds_every_schedule(self, inst):
        """The optimum total flow bounds EFT's total flow."""
        total, _ = optimal_unit_sum_flow(inst)
        eft_total = float(eft_schedule(inst, tiebreak="min").flows().sum())
        assert total <= eft_total + 1e-9

    @given(restricted_unit_instances(max_m=3, max_n=8))
    @settings(max_examples=25, deadline=None)
    def test_consistent_with_bottleneck_opt(self, inst):
        """Mean-optimal max flow can exceed the bottleneck optimum, but
        the mean-optimal schedule's *sum* bounds the bottleneck
        schedule's sum."""
        total, sum_sched = optimal_unit_sum_flow(inst)
        _, bottleneck_sched = __import__(
            "repro.offline.unit_opt", fromlist=["optimal_unit_schedule"]
        ).optimal_unit_schedule(inst)
        assert total <= float(bottleneck_sched.flows().sum()) + 1e-9
        # and conversely the bottleneck value bounds the sum schedule's max
        assert optimal_unit_fmax(inst) <= sum_sched.max_flow + 1e-9

    def test_hot_spot_instance(self):
        """Three simultaneous tasks on two machines: one must wait one
        slot, wherever the flexible task goes."""
        inst = Instance.build(
            2,
            releases=[0, 0, 0],
            procs=1.0,
            machine_sets=[{1}, {1, 2}, {2}],
        )
        total, sched = optimal_unit_sum_flow(inst)
        assert total == 4.0  # flows 1 + 1 + 2
        assert sched.max_flow == 2.0
        assert optimal_unit_fmax(inst) == 2  # objectives coincide here


class TestWeightedFlow:
    def test_weights_steer_priority(self):
        """Two tasks on one machine: the heavy one goes first whatever
        its id."""
        inst = Instance.build(1, releases=[0, 0], procs=1.0)
        _, light_first = optimal_unit_weighted_flow(inst, [1.0, 10.0])
        assert light_first.start_of(1) == 0.0  # heavy task first
        _, heavy_first = optimal_unit_weighted_flow(inst, [10.0, 1.0])
        assert heavy_first.start_of(0) == 0.0

    def test_weight_validation(self):
        inst = Instance.build(1, releases=[0], procs=1.0)
        with pytest.raises(ValueError, match="weights"):
            optimal_unit_weighted_flow(inst, [1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            optimal_unit_weighted_flow(inst, [-1.0])

    def test_uniform_weights_match_sum(self):
        inst = Instance.build(2, releases=[0, 0, 1], machine_sets=[{1}, {1, 2}, {2}])
        total_w, _ = optimal_unit_weighted_flow(inst, np.ones(3))
        total_s, _ = optimal_unit_sum_flow(inst)
        assert total_w == pytest.approx(total_s)
