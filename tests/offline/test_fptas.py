"""Tests for the FPTAS-style DP approximation."""

import pytest
from hypothesis import given, settings

from repro.core import Instance, eft_schedule
from repro.offline import optimal_fmax
from repro.offline.fptas import fptas_fmax
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestFptas:
    def test_eps_validated(self):
        inst = Instance.build(1, releases=[0], procs=1.0)
        with pytest.raises(ValueError):
            fptas_fmax(inst, eps=0.0)

    def test_empty(self):
        assert fptas_fmax(Instance(m=2, tasks=()), eps=0.1) == 0.0

    def test_exact_on_trivial(self):
        inst = Instance.build(2, releases=[0, 0], procs=[2.0, 1.0])
        assert fptas_fmax(inst, eps=0.05) <= 2.0 * 1.05 + 1e-9

    @given(unrestricted_instances(max_m=3, max_n=7))
    @settings(max_examples=25, deadline=None)
    def test_within_one_plus_eps_of_opt(self, inst):
        """The defining guarantee: result <= (1 + eps) * OPT, and never
        below OPT (it describes a feasible schedule up to rounding)."""
        eps = 0.25
        opt = optimal_fmax(inst)
        approx = fptas_fmax(inst, eps=eps)
        assert approx <= (1 + eps) * opt + 1e-6
        # rounding only inflates completions, so the approximation
        # upper-bounds a feasible value and cannot undercut OPT by more
        # than numerical noise
        assert approx >= opt - 1e-6

    @given(restricted_unit_instances(max_m=3, max_n=7))
    @settings(max_examples=20, deadline=None)
    def test_restricted_instances(self, inst):
        eps = 0.3
        opt = optimal_fmax(inst)
        approx = fptas_fmax(inst, eps=eps)
        assert opt - 1e-6 <= approx <= (1 + eps) * opt + 1e-6

    def test_tighter_eps_no_worse(self):
        inst = Instance.build(
            2, releases=[0, 0, 1, 1, 2], procs=[2, 1, 2, 1, 1]
        )
        loose = fptas_fmax(inst, eps=0.5)
        tight = fptas_fmax(inst, eps=0.05)
        assert tight <= loose + 1e-9

    def test_never_exceeds_eft(self):
        inst = Instance.build(3, releases=[0, 0, 0, 1, 1], procs=[3, 1, 2, 1, 2])
        assert fptas_fmax(inst, eps=0.2) <= eft_schedule(inst).max_flow + 1e-9
