"""Tests for the preemptive offline optimum."""

import pytest
from hypothesis import given, settings

from repro.core import Instance
from repro.offline import (
    lb_pmax,
    optimal_fmax,
    optimal_preemptive_fmax,
    optimal_unit_fmax,
    preemptive_feasible,
)
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestFeasibility:
    def test_trivially_feasible(self):
        inst = Instance.build(2, releases=[0, 0], procs=1.0)
        assert preemptive_feasible(inst, 1.0)

    def test_infeasible_below_pmax(self):
        inst = Instance.build(2, releases=[0], procs=[3.0])
        assert not preemptive_feasible(inst, 2.9)
        assert preemptive_feasible(inst, 3.0)

    def test_single_machine_stack(self):
        inst = Instance.build(1, releases=[0, 0], procs=[2.0, 2.0])
        assert not preemptive_feasible(inst, 3.9)
        assert preemptive_feasible(inst, 4.0)

    def test_eligibility_respected(self):
        inst = Instance.build(2, releases=[0, 0], procs=[2.0, 2.0], machine_sets=[{1}, {1}])
        assert not preemptive_feasible(inst, 3.5)
        assert preemptive_feasible(inst, 4.0)

    def test_preemption_enables_splitting(self):
        """Task B (short, urgent) can interleave with A on one machine:
        A: r=0, p=2; B: r=1, p=1, both pinned to machine 1.  With
        F=2: A must finish by 2 and B by 3 — feasible preemptively
        (A in [0,1] and [2,3]? no: A must end by 2...).  Check the
        exact threshold instead: total work 3 on one machine from time
        0 => last completion 3; B released at 1 can finish at 2 and A
        at 3 for flows (3, 1) => F=3 feasible, F=2.5 not (A needs 2
        units by 2.5 and B 1 unit by 3.5 => fine? A in [0, 2], B in
        [2, 3]: flows 2 and 2 => F=2 IS feasible)."""
        inst = Instance.build(1, releases=[0, 1], procs=[2.0, 1.0], machine_sets=[{1}, {1}])
        assert preemptive_feasible(inst, 2.0)
        assert not preemptive_feasible(inst, 1.4)

    def test_empty(self):
        assert preemptive_feasible(Instance(m=1, tasks=()), 1.0)


class TestOptimum:
    def test_equals_simple_cases(self):
        inst = Instance.build(2, releases=[0, 0], procs=[2.0, 1.0])
        assert optimal_preemptive_fmax(inst) == pytest.approx(2.0, abs=1e-5)

    def test_at_least_pmax(self):
        inst = Instance.build(3, releases=[0, 1], procs=[5.0, 1.0])
        assert optimal_preemptive_fmax(inst) >= lb_pmax(inst) - 1e-6

    @given(unrestricted_instances(max_m=3, max_n=6))
    @settings(max_examples=25, deadline=None)
    def test_never_exceeds_nonpreemptive(self, inst):
        pre = optimal_preemptive_fmax(inst)
        non = optimal_fmax(inst)
        assert pre <= non + 1e-4

    @given(restricted_unit_instances(max_m=3, max_n=7))
    @settings(max_examples=25, deadline=None)
    def test_never_exceeds_unit_opt(self, inst):
        pre = optimal_preemptive_fmax(inst)
        assert pre <= optimal_unit_fmax(inst) + 1e-4

    def test_gap_example(self):
        """McNaughton's classic: 3 tasks of length 2 on 2 machines.
        Non-preemptively one task must wait (Fmax = 4); preemptive
        wrap-around finishes everything by 3 (Fmax = 3)."""
        inst = Instance.build(2, releases=[0.0, 0.0, 0.0], procs=2.0)
        pre = optimal_preemptive_fmax(inst)
        non = optimal_fmax(inst)
        assert non == pytest.approx(4.0)
        assert pre == pytest.approx(3.0, abs=1e-5)
