"""Unit tests for the branch-and-bound exact solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, Schedule, Task, eft_schedule
from repro.offline import ExactSolver, optimal_fmax, optimal_schedule, optimal_unit_fmax


def brute_force_fmax(instance: Instance) -> float:
    """Exhaustive optimum over machine assignments with per-machine
    release order (optimal per the adjacent-swap argument) — the
    independent oracle the solver is checked against."""
    best = float("inf")
    tasks = list(instance.tasks)
    eligibles = [sorted(t.eligible(instance.m)) for t in tasks]
    for combo in itertools.product(*eligibles):
        completions = {j: 0.0 for j in range(1, instance.m + 1)}
        fmax = 0.0
        for t, machine in zip(tasks, combo):  # tasks sorted by release
            start = max(t.release, completions[machine])
            completions[machine] = start + t.proc
            fmax = max(fmax, start + t.proc - t.release)
        best = min(best, fmax)
    return best


class TestExactSolver:
    def test_single_machine_stack(self):
        inst = Instance.build(1, releases=[0, 0], procs=[2, 1])
        # order (2 then 1): flows 2, 3 -> 3; order (1 then 2): flows 1, 3 -> 3
        assert optimal_fmax(inst) == 3.0

    def test_two_machines_split(self):
        inst = Instance.build(2, releases=[0, 0], procs=[2, 1])
        assert optimal_fmax(inst) == 2.0

    def test_respects_processing_sets(self):
        inst = Instance.build(
            2, releases=[0, 0], procs=[1, 1], machine_sets=[{1}, {1}]
        )
        assert optimal_fmax(inst) == 2.0

    def test_empty(self):
        assert optimal_fmax(Instance(m=3, tasks=())) == 0.0

    def test_schedule_is_valid_and_witnesses(self):
        inst = Instance.build(2, releases=[0, 0, 1, 1.5], procs=[2, 1, 1, 0.5])
        value, sched = ExactSolver(inst).solve()
        sched.validate()
        assert sched.max_flow == pytest.approx(value)

    def test_beats_or_ties_eft(self):
        inst = Instance.build(
            3,
            releases=[0, 0, 0, 1, 1],
            procs=[3, 1, 1, 2, 1],
            machine_sets=[{1, 2}, {2, 3}, {1}, {3}, {1, 2}],
        )
        assert optimal_fmax(inst) <= eft_schedule(inst).max_flow + 1e-9

    def test_node_limit(self):
        inst = Instance.build(4, releases=[0] * 9, procs=list(range(1, 10)))
        with pytest.raises(RuntimeError, match="node limit"):
            ExactSolver(inst, node_limit=5).solve()

    @given(
        st.integers(1, 3),
        st.lists(st.integers(0, 4), min_size=1, max_size=6),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, m, releases, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        procs = rng.integers(1, 4, size=len(releases)).astype(float)
        inst = Instance.build(m, releases=sorted(float(r) for r in releases), procs=procs)
        assert optimal_fmax(inst) == pytest.approx(brute_force_fmax(inst))

    @given(
        st.integers(2, 3),
        st.lists(st.integers(0, 3), min_size=1, max_size=7),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_unit_opt_on_unit_instances(self, m, releases):
        inst = Instance.build(m, releases=sorted(float(r) for r in releases), procs=1.0)
        assert optimal_fmax(inst) == pytest.approx(float(optimal_unit_fmax(inst)))

    def test_optimal_schedule_wrapper(self):
        inst = Instance.build(2, releases=[0, 0], procs=[1, 1])
        sched = optimal_schedule(inst)
        assert isinstance(sched, Schedule)
        assert sched.max_flow == 1.0
