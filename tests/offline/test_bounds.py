"""Lower bounds on OPT must never exceed the true optimum."""

import pytest
from hypothesis import given, settings

from repro.core import Instance
from repro.offline import (
    lb_pmax,
    lb_restricted_volume,
    lb_volume,
    opt_lower_bound,
    optimal_fmax,
    optimal_unit_fmax,
)
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestPmax:
    def test_value(self):
        inst = Instance.build(2, releases=[0, 0], procs=[3, 1])
        assert lb_pmax(inst) == 3.0


class TestVolume:
    def test_burst_bound(self):
        # 4 unit tasks at once on 2 machines: last completes >= 2
        inst = Instance.build(2, releases=[0, 0, 0, 0], procs=1.0)
        assert lb_volume(inst) == pytest.approx(2.0)

    def test_suffix_matters(self):
        # quiet prefix then a burst: the suffix bound must see the burst
        inst = Instance.build(1, releases=[0, 10, 10, 10], procs=1.0)
        assert lb_volume(inst) == pytest.approx(3.0)

    def test_empty(self):
        assert lb_volume(Instance(m=2, tasks=())) == 0.0


class TestRestrictedVolume:
    def test_tighter_than_global_on_pinned_tasks(self):
        # 4 tasks pinned to machine 1 of 4: global volume bound is weak,
        # the restricted bound sees the hot spot.
        inst = Instance.build(4, releases=[0] * 4, procs=1.0, machine_sets=[{1}] * 4)
        assert lb_volume(inst) == pytest.approx(1.0)
        assert lb_restricted_volume(inst) == pytest.approx(4.0)

    def test_union_of_sets(self):
        # two groups both confined to {1,2}: bound uses |J| = 2
        inst = Instance.build(
            3, releases=[0] * 4, procs=1.0, machine_sets=[{1}, {1, 2}, {2}, {1, 2}]
        )
        assert lb_restricted_volume(inst) >= 2.0


class TestAgainstExactOPT:
    @given(unrestricted_instances(max_m=3, max_n=7))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_opt_general(self, inst):
        assert opt_lower_bound(inst) <= optimal_fmax(inst) + 1e-6

    @given(restricted_unit_instances(max_m=4, max_n=9))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_opt_unit(self, inst):
        assert opt_lower_bound(inst) <= optimal_unit_fmax(inst) + 1e-6
