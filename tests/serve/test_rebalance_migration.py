"""Live migration surface: withdraw / apply_placement on the serve tier."""

import pytest

from repro.core import EFT, Task
from repro.serve import Dispatcher, ServeMetrics
from repro.serve.shard import ShardPlan, ShardRouter


def _dispatcher(m=4, metrics=None):
    return Dispatcher(EFT(m, tiebreak="min"), metrics=metrics)


def _task(tid, release, proc=1.0, machines=None, key=None):
    return Task(tid=tid, release=release, proc=proc,
                machines=None if machines is None else frozenset(machines), key=key)


class TestWithdraw:
    def test_unknown_tid(self):
        assert _dispatcher().withdraw(99, now=0.0) is None

    def test_started_task_stays(self):
        d = _dispatcher()
        d.submit(_task(0, release=0.0, machines={1}))
        assert d.withdraw(0, now=0.5) is None  # started at 0.0
        assert 0 in d.placements

    def test_tail_withdrawal_unwinds_completion(self):
        d = _dispatcher()
        d.submit(_task(0, release=0.0, machines={1}))       # runs [0, 1)
        d.submit(_task(1, release=0.0, machines={1}))       # queued [1, 2)
        assert d.scheduler.completions[1] == 2.0
        pulled = d.withdraw(1, now=0.5)
        assert pulled is not None and pulled.tid == 1
        assert d.scheduler.completions[1] == 1.0            # tail shrank
        assert d.scheduler.task_counts[1] == 1
        assert 1 not in d.placements and 1 not in d._tasks

    def test_mid_queue_withdrawal_leaves_hole(self):
        """Withdrawing from the middle keeps the machine's committed
        horizon — a deterministic idle hole, never an invented earlier
        finish that later commits could overlap."""
        d = _dispatcher()
        for tid in range(3):                                # [0,1) [1,2) [2,3)
            d.submit(_task(tid, release=0.0, machines={1}))
        assert d.withdraw(1, now=0.5) is not None
        assert d.scheduler.completions[1] == 3.0            # untouched
        assert d.scheduler.task_counts[1] == 2

    def test_withdraw_then_redispatch_lands_elsewhere(self):
        d = _dispatcher(m=2)
        d.submit(_task(0, release=0.0, machines={1}))
        d.submit(_task(1, release=0.0, machines={1}))
        moved = d.withdraw(1, now=0.0)
        decision = d.redispatch(
            _task(1, release=moved.release, machines={2}), now=0.0, reason="rebalance"
        )
        assert decision.machine == 2
        assert decision.reason == "rebalance"


class TestApplyPlacement:
    def test_warmup_charged_to_added_machines_only(self):
        d = _dispatcher(m=4)
        old = {1: frozenset({1, 2})}
        new = {1: frozenset({1, 2, 3})}
        d.apply_placement(old, new, now=5.0, warmup=2.0)
        assert d.scheduler.completions[3] == 7.0            # max(0, 5) + 2
        assert d.scheduler.completions[1] == 0.0
        assert d.scheduler.completions[2] == 0.0

    def test_warmup_stacks_on_committed_work(self):
        d = _dispatcher(m=2)
        d.submit(_task(0, release=0.0, proc=10.0, machines={2}))
        d.apply_placement({1: frozenset({1})}, {1: frozenset({1, 2})}, now=1.0, warmup=3.0)
        assert d.scheduler.completions[2] == 13.0           # max(10, 1) + 3

    def test_zero_warmup_never_perturbs(self):
        """warmup=0 must leave the scheduler state bit-identical — the
        no-trigger identity guarantee depends on it."""
        d = _dispatcher(m=4)
        d.submit(_task(0, release=0.0, machines={1, 2}))
        before = list(d.scheduler.completions)
        d.apply_placement({1: frozenset({1})}, {1: frozenset({1, 3})}, now=0.5, warmup=0.0)
        assert list(d.scheduler.completions) == before

    def test_shrunk_set_migrates_queued_work(self):
        d = _dispatcher(m=3)
        d.submit(_task(0, release=0.0, machines={1, 2}, key=1))  # starts on 1
        d.submit(_task(1, release=0.0, machines={1, 2}, key=1))  # starts on 2
        d.submit(_task(2, release=0.0, machines={1, 2}, key=1))  # queued on 1
        old = {1: frozenset({1, 2})}
        new = {1: frozenset({2, 3})}  # machine 1 dropped from home 1's set
        moved = d.apply_placement(old, new, now=0.5)
        # The queued task on machine 1 moved; started work stayed put.
        assert [m.task.tid for m in moved] == [2]
        assert moved[0].reason == "rebalance"
        assert d.placements[2][0] in {2, 3}
        assert d.placements[0][0] == 1

    def test_surviving_machine_keeps_its_work(self):
        d = _dispatcher(m=3)
        d.submit(_task(0, release=0.0, machines={1, 2}, key=1))
        d.submit(_task(1, release=0.0, machines={1, 2}, key=1))
        before = dict(d.placements)
        # Widen only: both current machines survive.
        moved = d.apply_placement(
            {1: frozenset({1, 2})}, {1: frozenset({1, 2, 3})}, now=0.5
        )
        assert moved == []
        assert d.placements == before

    def test_keyless_tasks_never_migrate(self):
        d = _dispatcher(m=2)
        d.submit(_task(0, release=0.0, machines={1}))
        d.submit(_task(1, release=0.0, machines={1}))        # queued, no key
        moved = d.apply_placement({1: frozenset({1})}, {1: frozenset({2})}, now=0.5)
        assert moved == []

    def test_metrics_roll_in(self):
        metrics = ServeMetrics()
        d = _dispatcher(m=3, metrics=metrics)
        d.submit(_task(0, release=0.0, machines={1, 2}, key=1))
        d.submit(_task(1, release=0.0, machines={1, 2}, key=1))
        d.submit(_task(2, release=0.0, machines={1, 2}, key=1))
        d.apply_placement(
            {1: frozenset({1, 2})}, {1: frozenset({2, 3})}, now=0.5, warmup=1.0, version=4
        )
        snap = metrics.registry.snapshot()
        assert snap["counters"]["rebalance_applied_total"] == 1
        assert snap["counters"]["rebalance_migrated_total"] == 1
        assert snap["counters"]["rebalance_warmup_machines_total"] == 1
        assert snap["gauges"]["placement_version"] == 4

    def test_metrics_lazy_without_rebalance(self):
        """A run that never rebalances must snapshot without any
        rebalance keys — byte-identity with pre-rebalance snapshots."""
        metrics = ServeMetrics()
        d = _dispatcher(m=2, metrics=metrics)
        d.submit(_task(0, release=0.0, machines={1}))
        snap = metrics.registry.snapshot()
        assert not [k for k in snap["counters"] if "rebalance" in k]
        assert "placement_version" not in snap["gauges"]


class TestShardRouterApplyPlacement:
    def _router(self, m=6, shards=2):
        return ShardRouter(ShardPlan.even(m, shards))

    def test_warmup_charged_on_owning_shard(self):
        r = self._router()
        r.apply_placement(
            {1: frozenset({1, 2})}, {1: frozenset({1, 2, 5})}, now=3.0, warmup=2.0
        )
        sid = r.plan.shard_of(5)
        assert r.dispatchers[sid].scheduler.completions[5] == 5.0
        other = r.plan.shard_of(1)
        assert r.dispatchers[other].scheduler.completions[1] == 0.0

    def test_cross_shard_migration(self):
        """Dropping a machine re-places its queued work through the
        router — potentially onto another shard (a handoff)."""
        r = self._router(m=6, shards=2)   # shards: {1..3}, {4..6}
        # Two requests homed on 3 with replicas {3, 4} (straddles the
        # boundary): the first starts on 3, the second queues behind it.
        r.submit(_task(0, release=0.0, machines={3}, key=3))
        r.submit(_task(1, release=0.0, machines={3}, key=3))
        assert r.placements[1][0] == 3
        moved = r.apply_placement(
            {3: frozenset({3})}, {3: frozenset({4})}, now=0.5, version=1
        )
        assert len(moved) == 1
        assert moved[0].decision.machine == 4
        assert r.placements[1][0] == 4
        # Booked on the other shard now; books stay consistent.
        assert r.placements[0][0] == 3
        snap = r.router_registry.snapshot()
        assert snap["counters"]["router_rebalance_applied_total"] == 1
        assert snap["counters"]["router_rebalance_migrated_total"] == 1
        assert snap["gauges"]["router_placement_version"] == 1

    def test_lazy_counters(self):
        r = self._router()
        r.submit(_task(0, release=0.0, machines={1}, key=1))
        snap = r.router_registry.snapshot()
        assert not [k for k in snap["counters"] if "rebalance" in k]
        assert "router_placement_version" not in snap["gauges"]
