"""Property tests for the task wire codec (Hypothesis).

The round-trip ``task_from_wire(task_to_wire(t)) == t`` must hold for
every valid task, survive a real encode/decode through the frame layer,
and the decoder must reject every non-finite or negative numeric field
— json happily carries ``NaN``/``Infinity``, so the wire boundary is
the last line of defence.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.task import Task
from repro.serve import (
    PROTOCOL_VERSION,
    ProtocolError,
    check_version,
    decode_frame,
    encode_frame,
    task_from_wire,
    task_to_wire,
    version_error,
    versioned,
)

finite_release = st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False)
finite_proc = st.floats(
    min_value=1e-9, max_value=1e12, allow_nan=False, allow_infinity=False, exclude_min=True
)
machine_sets = st.one_of(
    st.none(),
    st.frozensets(st.integers(min_value=1, max_value=64), min_size=1, max_size=8),
)
tasks = st.builds(
    Task,
    tid=st.integers(min_value=0, max_value=2**31),
    release=finite_release,
    proc=finite_proc,
    machines=machine_sets,
    key=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
)

non_finite = st.sampled_from([math.nan, math.inf, -math.inf])


class TestRoundTrip:
    @given(task=tasks)
    @settings(max_examples=200)
    def test_wire_roundtrip_identity(self, task):
        assert task_from_wire(task_to_wire(task)) == task

    @given(task=tasks)
    @settings(max_examples=100)
    def test_roundtrip_survives_framing(self, task):
        frame = encode_frame(versioned({"op": "submit", **task_to_wire(task)}))
        message = decode_frame(frame[4:])
        assert check_version(message) is None
        assert task_from_wire(message) == task

    @given(task=tasks)
    def test_wire_machine_set_is_sorted_list(self, task):
        wire = task_to_wire(task)
        if task.machines is None:
            assert wire["machine_set"] is None
        else:
            assert wire["machine_set"] == sorted(task.machines)


class TestRejection:
    @given(task=tasks, bad=non_finite)
    @settings(max_examples=50)
    def test_non_finite_release_rejected(self, task, bad):
        wire = {**task_to_wire(task), "release": bad}
        with pytest.raises(ProtocolError, match="non-finite|malformed"):
            task_from_wire(wire)

    @given(task=tasks, bad=non_finite)
    @settings(max_examples=50)
    def test_non_finite_proc_rejected(self, task, bad):
        wire = {**task_to_wire(task), "proc": bad}
        with pytest.raises(ProtocolError, match="non-finite|malformed"):
            task_from_wire(wire)

    @given(task=tasks, release=st.floats(max_value=-1e-9, allow_nan=False))
    @settings(max_examples=50)
    def test_negative_release_rejected(self, task, release):
        wire = {**task_to_wire(task), "release": release}
        with pytest.raises(ProtocolError):
            task_from_wire(wire)

    @given(task=tasks, proc=st.floats(max_value=0.0, allow_nan=False))
    @settings(max_examples=50)
    def test_non_positive_proc_rejected(self, task, proc):
        wire = {**task_to_wire(task), "proc": proc}
        with pytest.raises(ProtocolError):
            task_from_wire(wire)

    @given(task=tasks, machine=st.integers(max_value=0))
    @settings(max_examples=50)
    def test_non_positive_machine_index_rejected(self, task, machine):
        wire = {**task_to_wire(task), "machine_set": [machine]}
        with pytest.raises(ProtocolError):
            task_from_wire(wire)


class TestVersioning:
    @given(op=st.sampled_from(["ping", "submit", "stats", "drain"]))
    def test_versioned_stamps_current(self, op):
        message = versioned({"op": op})
        assert message["v"] == PROTOCOL_VERSION
        assert check_version(message) is None

    def test_absent_version_passes(self):
        # v0 peers (pre-version frames) must keep working.
        assert check_version({"op": "ping"}) is None

    @given(v=st.one_of(st.integers(), st.text(max_size=4)).filter(lambda v: v != PROTOCOL_VERSION))
    @settings(max_examples=50)
    def test_any_other_version_fails(self, v):
        complaint = check_version({"op": "ping", "v": v})
        assert complaint is not None and "version mismatch" in complaint
        error = version_error({"op": "ping", "v": v}, complaint)
        assert error["ok"] is False and error["v"] == PROTOCOL_VERSION
        assert error["op"] == "ping"
