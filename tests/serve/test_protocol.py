"""Unit tests for the length-prefixed JSON wire protocol."""

import asyncio
import struct

import pytest

from repro.core.task import Task
from repro.serve import (
    MAX_FRAME,
    FrameTooLargeError,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    task_from_wire,
    task_to_wire,
)
from repro.serve.protocol import parse_length, validate_length


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read_all(data: bytes) -> list:
    async def go():
        reader = _reader_with(data)
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(go())


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "submit", "tid": 3, "release": 0.25, "machine_set": [1, 2]}
        assert decode_frame(encode_frame(message)[4:]) == message

    def test_read_frames_in_sequence(self):
        frames = [{"op": "ping"}, {"op": "stats"}, {"a": [1, 2, 3]}]
        data = b"".join(encode_frame(f) for f in frames)
        assert _read_all(data) == frames

    def test_clean_eof_returns_none(self):
        assert _read_all(b"") == []

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            _read_all(b"\x00\x00")

    def test_eof_mid_body_raises(self):
        data = encode_frame({"op": "ping"})[:-2]
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read_all(data)

    def test_oversized_declared_length_rejected(self):
        header = struct.pack(">I", MAX_FRAME + 1)
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            _read_all(header + b"x")

    def test_oversized_declared_length_is_typed(self):
        header = struct.pack(">I", MAX_FRAME + 1)
        with pytest.raises(FrameTooLargeError):
            _read_all(header + b"x")

    def test_oversized_encode_rejected(self):
        with pytest.raises(FrameTooLargeError, match="MAX_FRAME"):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})


class TestLengthContract:
    def test_parse_length_roundtrip(self):
        assert parse_length(struct.pack(">I", 1234)) == 1234
        assert parse_length(struct.pack(">I", 0)) == 0
        assert parse_length(struct.pack(">I", MAX_FRAME)) == MAX_FRAME

    @pytest.mark.parametrize("header", [b"", b"\x00", b"\x00\x00\x00", b"\x00" * 5])
    def test_parse_length_wrong_header_size(self, header):
        with pytest.raises(ProtocolError, match="header"):
            parse_length(header)

    def test_parse_length_too_large_is_typed(self):
        with pytest.raises(FrameTooLargeError, match="MAX_FRAME"):
            parse_length(struct.pack(">I", MAX_FRAME + 1))

    def test_validate_length_negative(self):
        with pytest.raises(ProtocolError, match=">= 0"):
            validate_length(-1)

    @pytest.mark.parametrize("length", [1.5, "12", None, True, False])
    def test_validate_length_non_integer(self, length):
        with pytest.raises(ProtocolError, match="int"):
            validate_length(length)

    def test_frame_too_large_is_protocol_error(self):
        # Callers catching the generic error still see oversize frames.
        assert issubclass(FrameTooLargeError, ProtocolError)
        with pytest.raises(FrameTooLargeError):
            validate_length(MAX_FRAME + 1)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1, 2]")

    def test_garbage_body_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(b"\xff\xfe not json")


class TestTaskWire:
    def test_roundtrip_restricted(self):
        task = Task(tid=7, release=1.5, proc=0.25, machines=frozenset({2, 4}), key=9)
        assert task_from_wire(task_to_wire(task)) == task

    def test_roundtrip_unrestricted(self):
        task = Task(tid=0, release=0.0, proc=1.0)
        wire = task_to_wire(task)
        assert wire["machine_set"] is None
        assert task_from_wire(wire) == task

    def test_wire_is_json_safe(self):
        wire = task_to_wire(Task(tid=1, release=0.0, proc=1.0, machines=frozenset({3, 1})))
        assert wire["machine_set"] == [1, 3]
        assert decode_frame(encode_frame(wire)[4:]) == wire  # must serialise cleanly

    @pytest.mark.parametrize(
        "message",
        [
            {},
            {"tid": 1, "release": 0.0},  # missing proc
            {"tid": "x", "release": None, "proc": 1.0},
            {"tid": 1, "release": 0.0, "proc": 1.0, "machine_set": ["a"]},
            {"tid": 1, "release": -1.0, "proc": 1.0},  # Task validator
            {"tid": 1, "release": 0.0, "proc": 0.0},  # Task validator
            {"tid": 1, "release": 0.0, "proc": 1.0, "machine_set": []},  # empty set
        ],
    )
    def test_malformed_submits_rejected(self, message):
        with pytest.raises(ProtocolError):
            task_from_wire(message)
