"""Unit tests for admission control: SLO shedding and bounded queues."""

import numpy as np
import pytest

from repro.core import EFT, Instance, Task
from repro.serve import (
    SHED,
    SHED_QUEUE_FULL,
    SHED_SLO,
    AdmissionController,
    Dispatcher,
    estimated_flow,
)
from repro.simulation.workload import WorkloadSpec, generate_workload


def _instance(seed: int, m: int = 5, n: int = 80, lam: float = 6.0) -> Instance:
    spec = WorkloadSpec(m=m, n=n, lam=lam, k=2, strategy="overlapping", case="uniform")
    return generate_workload(spec, rng=np.random.default_rng(seed))


class TestController:
    def test_disabled_controller(self):
        ctrl = AdmissionController()
        assert not ctrl.enabled
        # A Dispatcher drops a disabled controller entirely.
        assert Dispatcher(EFT(2, tiebreak="min"), admission=ctrl).admission is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdmissionController(slo=0.0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)

    def test_slo_sheds_exactly_above_threshold(self):
        """m=1, unit tasks at t=0: flows are 1, 2, 3, ... — an SLO of
        2 admits the first two and sheds the rest."""
        d = Dispatcher(EFT(1, tiebreak="min"), admission=AdmissionController(slo=2.0))
        statuses = [
            d.submit(Task(tid=i, release=0.0, proc=1.0)).status for i in range(4)
        ]
        assert statuses == ["dispatched", "dispatched", SHED, SHED]
        assert all(
            dec.reason == SHED_SLO for dec in d.decisions if dec.status == SHED
        )

    def test_queue_bound_sheds_when_all_candidates_full(self):
        d = Dispatcher(
            EFT(2, tiebreak="min"), admission=AdmissionController(max_queue_depth=1)
        )
        assert d.submit(Task(tid=0, release=0.0, proc=1.0)).status == "dispatched"
        assert d.submit(Task(tid=1, release=0.0, proc=1.0)).status == "dispatched"
        third = d.submit(Task(tid=2, release=0.0, proc=1.0))
        assert third.status == SHED
        assert third.reason == SHED_QUEUE_FULL
        # Once a completion passes, the queue frees up again.
        assert d.submit(Task(tid=3, release=1.0, proc=1.0)).status == "dispatched"

    def test_queue_bound_is_per_candidate_set(self):
        """Only the task's own processing set counts toward the bound."""
        d = Dispatcher(
            EFT(2, tiebreak="min"), admission=AdmissionController(max_queue_depth=1)
        )
        d.submit(Task(tid=0, release=0.0, proc=1.0, machines=frozenset({1})))
        # Machine 1 is full, but machine 2 is empty: still admitted.
        decision = d.submit(Task(tid=1, release=0.0, proc=1.0, machines=frozenset({1, 2})))
        assert decision.status == "dispatched"
        assert decision.machine == 2


class TestEstimatedFlow:
    def test_formula(self):
        task = Task(tid=0, release=2.0, proc=1.5)
        assert estimated_flow(task, [1, 2], {1: 5.0, 2: 3.0}) == pytest.approx(2.5)
        # Release after all completions: flow is just proc.
        assert estimated_flow(task, [1, 2], {1: 0.5, 2: 1.0}) == pytest.approx(1.5)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_exact_for_eft_under_admission(self, seed):
        """Admitted requests achieve exactly the flow admission predicted."""
        inst = _instance(seed)
        d = Dispatcher(
            EFT(inst.m, tiebreak="min"), admission=AdmissionController(slo=1.0)
        )
        decisions = [d.submit(t) for t in inst]
        for dec in decisions:
            if dec.status == "dispatched":
                assert dec.est_flow <= 1.0 + 1e-12
                assert dec.est_flow == pytest.approx(
                    dec.start + dec.task.proc - dec.task.release
                )


class TestShedNeutrality:
    """A shed request must not perturb any admitted decision."""

    @pytest.mark.parametrize("seed", [3, 4])
    def test_admitted_subsequence_unperturbed_deterministic(self, seed):
        inst = _instance(seed, lam=12.0)  # overloaded: plenty of shedding
        slo = 1.5  # above proc=1, so an idle machine always admits
        d = Dispatcher(EFT(inst.m, tiebreak="min"), admission=AdmissionController(slo=slo))
        decisions = [d.submit(t) for t in inst]
        admitted = [dec.task for dec in decisions if dec.status == "dispatched"]
        assert 0 < len(admitted) < len(inst)
        # Re-run only the admitted subsequence with no admission at all.
        clean = Dispatcher(EFT(inst.m, tiebreak="min"))
        for task in admitted:
            clean.submit(task)
        assert clean.placements == {
            t.tid: d.placements[t.tid] for t in admitted
        }

    def test_admitted_subsequence_unperturbed_randomised(self):
        """Shed requests consume no RNG draw: EFT-rand places the
        admitted subsequence exactly as a run that never saw them."""
        inst = _instance(9, lam=12.0)
        slo = 1.5
        d = Dispatcher(
            EFT(inst.m, tiebreak="rand", rng=123),
            admission=AdmissionController(slo=slo),
        )
        decisions = [d.submit(t) for t in inst]
        admitted = [dec.task for dec in decisions if dec.status == "dispatched"]
        assert 0 < len(admitted) < len(inst)
        clean = Dispatcher(EFT(inst.m, tiebreak="rand", rng=123))
        for task in admitted:
            clean.submit(task)
        assert clean.placements == {
            t.tid: d.placements[t.tid] for t in admitted
        }
