"""Integration tests: the full serving stack over a loopback socket.

All async tests run their own event loop via ``asyncio.run`` (the
suite has no asyncio pytest plugin by design — no extra dependency).
"""

import asyncio

import pytest

from repro.faults.schedule import FaultSchedule
from repro.obs.snapshot import load_metrics, validate_metrics
from repro.core.task import Task
from repro.serve import (
    ServeConfig,
    build_drive_instance,
    build_service,
    run_loopback,
    run_loopback_sync,
)

# Tiny virtual procs keep wall time per test well under a second.
FAST = dict(m=4, n=40, rate=400.0, k=2, proc=0.004, seed=42)


def _fast_instance(**overrides):
    return build_drive_instance(**{"source": "spec", **FAST, **overrides})


class TestLoopback:
    def test_clean_run_no_drops(self, tmp_path):
        metrics_path = tmp_path / "serve.metrics.json"
        report = run_loopback_sync(
            _fast_instance(),
            ServeConfig(m=FAST["m"]),
            target_rate=FAST["rate"],
            metrics_path=metrics_path,
        )
        assert report.n_errors == 0
        assert report.n_acked == report.n_sent == FAST["n"]
        assert report.n_dispatched == FAST["n"]
        assert report.n_shed == report.n_parked == 0
        # Every dispatched request was actually served to completion.
        assert report.server_stats["completed"] == FAST["n"]
        assert report.server_stats["outstanding"] == 0
        # The snapshot on disk is a valid canonical metrics document.
        data = load_metrics(metrics_path)  # load_metrics validates the schema
        assert data["meta"]["source"] == "repro-serve-loopback"
        assert data["metrics"]["counters"]["dispatched_total"] == FAST["n"]
        assert data["metrics"]["counters"]["completed_total"] == FAST["n"]

    def test_assignments_identical_across_runs(self):
        """The acceptance check: same seed, same placements, twice."""
        reports = [
            run_loopback_sync(_fast_instance(), ServeConfig(m=FAST["m"]), target_rate=FAST["rate"])
            for _ in range(2)
        ]
        assert reports[0].assignments == reports[1].assignments
        assert reports[0].assignments_digest == reports[1].assignments_digest

    def test_matches_shadow_replay(self):
        """Live loopback placements == pure virtual-time replay."""
        from repro.campaigns.trace import make_scheduler
        from repro.serve import shadow_replay

        inst = _fast_instance()
        report = run_loopback_sync(inst, ServeConfig(m=FAST["m"]), target_rate=FAST["rate"])
        dispatcher, _ = shadow_replay(inst, make_scheduler("eft-min", FAST["m"], seed=0))
        assert dict(report.assignments) == {
            tid: machine for tid, (machine, _) in dispatcher.placements.items()
        }

    def test_slo_shedding_reported(self):
        """An absurdly tight SLO sheds everything after the first wave."""
        report = run_loopback_sync(
            _fast_instance(),
            ServeConfig(m=FAST["m"], slo=0.004),  # == proc: zero queueing allowed
            target_rate=FAST["rate"],
        )
        assert report.n_errors == 0
        assert report.n_shed > 0
        assert report.n_dispatched + report.n_shed == FAST["n"]
        assert set(report.shed_by_reason) == {"slo"}

    def test_kv_source(self):
        report = run_loopback_sync(
            _fast_instance(source="kv", n_keys=64),
            ServeConfig(m=FAST["m"]),
            target_rate=FAST["rate"],
        )
        assert report.n_errors == 0
        assert report.n_dispatched == FAST["n"]

    def test_faults_during_run(self):
        """A mid-run outage displaces work but loses nothing."""
        # Machine 1 down from virtual t=0.02 to well past the run's end.
        faults = FaultSchedule.build([(1, 0.02, 10.0)])
        report = run_loopback_sync(
            _fast_instance(n=60),
            ServeConfig(m=FAST["m"]),
            target_rate=FAST["rate"],
            faults=faults,
        )
        assert report.n_errors == 0
        assert report.n_acked == report.n_sent == 60
        # No parked requests (k=2 sets always intersect the 3 alive
        # machines), and every request completed despite the outage.
        assert report.n_parked == 0
        assert report.server_stats["completed"] == 60
        assert report.server_stats["alive"] == [2, 3, 4]


class TestServiceFaultSurface:
    def test_kill_displaces_revive_unparks(self):
        """Drive a ServeService directly: kill a machine with queued
        work, check the work survives; park a single-machine task and
        check a revive releases it."""

        async def go():
            service = build_service(ServeConfig(m=2, time_scale=0.02))
            await service.start()
            try:
                # Three tasks forced onto machine 1 (20 ms each).
                for i in range(3):
                    decision = service.submit(
                        Task(tid=i, release=0.0, proc=1.0, machines=frozenset({1}))
                    )
                    assert decision.status == "dispatched"
                await asyncio.sleep(0.005)  # let machine 1 pull one in flight
                displaced = service.kill(1)
                # The queued tail (machine-1-only) has nowhere to go: parked.
                assert displaced >= 2
                assert len(service.dispatcher.parked) == displaced
                # A fresh machine-1-only task also parks.
                parked = service.submit(
                    Task(tid=3, release=0.1, proc=1.0, machines=frozenset({1}))
                )
                assert parked.status == "parked"
                n_parked = len(service.dispatcher.parked)
                assert service.revive(1) == n_parked  # everything re-enters
                completed = await service.drain()
                assert completed == 4  # nothing was lost
                assert service.stats()["outstanding"] == 0
                assert service.dispatcher.parked == []
            finally:
                await service.stop()

        asyncio.run(go())

    def test_stats_shape(self):
        async def go():
            service = build_service(ServeConfig(m=3))
            await service.start()
            try:
                service.submit(Task(tid=0, release=0.0, proc=0.001))
                await service.drain()
                stats = service.stats()
                assert stats["m"] == 3
                assert stats["alive"] == [1, 2, 3]
                assert stats["dispatched"] == 1
                assert stats["completed"] == 1
                validate_metrics(
                    {
                        "format": "repro-metrics",
                        "version": 1,
                        "meta": {},
                        "metrics": stats["metrics"],
                    }
                )
            finally:
                await service.stop()

        asyncio.run(go())


class TestProtocolOverSocket:
    def test_ping_bad_op_and_malformed_submit(self, tmp_path):
        """Error paths over a real socket: bad ops answer ok=false and
        keep the connection; a framing error drops it."""
        from repro.serve import encode_frame, read_frame, write_frame

        async def go():
            service = build_service(ServeConfig(m=2))
            await service.start()
            socket_path = str(tmp_path / "serve.sock")

            async def on_connection(reader, writer):
                await service.handle_connection(reader, writer)

            server = await asyncio.start_unix_server(on_connection, path=socket_path)
            try:
                async with server:
                    reader, writer = await asyncio.open_unix_connection(socket_path)
                    await write_frame(writer, {"op": "ping"})
                    pong = await read_frame(reader)
                    assert pong["ok"] and pong["op"] == "pong"
                    await write_frame(writer, {"op": "warp"})
                    assert (await read_frame(reader))["ok"] is False
                    # Malformed submit: answered, connection survives.
                    await write_frame(writer, {"op": "submit", "tid": 0})
                    bad = await read_frame(reader)
                    assert bad["ok"] is False and "error" in bad
                    await write_frame(writer, {"op": "ping"})
                    assert (await read_frame(reader))["ok"]
                    writer.close()
                    await writer.wait_closed()

                    # A corrupt length prefix gets an error frame, then EOF.
                    reader, writer = await asyncio.open_unix_connection(socket_path)
                    writer.write(b"\xff\xff\xff\xff")
                    await writer.drain()
                    err = await read_frame(reader)
                    assert err["ok"] is False
                    assert await read_frame(reader) is None
                    writer.close()
                    await writer.wait_closed()
            finally:
                await service.stop()

        asyncio.run(go())

    def test_out_of_order_release_is_an_error_not_a_crash(self, tmp_path):
        """The scheduler's release-order contract surfaces as ok=false."""
        from repro.serve import read_frame, task_to_wire, write_frame

        async def go():
            service = build_service(ServeConfig(m=2))
            await service.start()
            socket_path = str(tmp_path / "serve.sock")

            async def on_connection(reader, writer):
                await service.handle_connection(reader, writer)

            server = await asyncio.start_unix_server(on_connection, path=socket_path)
            try:
                async with server:
                    reader, writer = await asyncio.open_unix_connection(socket_path)
                    t1 = Task(tid=0, release=5.0, proc=0.001)
                    t2 = Task(tid=1, release=1.0, proc=0.001)  # goes backwards
                    await write_frame(writer, {"op": "submit", **task_to_wire(t1)})
                    assert (await read_frame(reader))["ok"]
                    await write_frame(writer, {"op": "submit", **task_to_wire(t2)})
                    out_of_order = await read_frame(reader)
                    assert out_of_order["ok"] is False
                    # The service is still healthy afterwards.
                    await write_frame(writer, {"op": "ping"})
                    assert (await read_frame(reader))["ok"]
                    writer.close()
                    await writer.wait_closed()
            finally:
                await service.stop()

        asyncio.run(go())


class TestDriverValidation:
    def test_build_drive_instance_rejects_bad_args(self):
        with pytest.raises(ValueError):
            build_drive_instance(rate=0.0)
        with pytest.raises(ValueError):
            build_drive_instance(proc=-1.0)
        with pytest.raises(ValueError):
            build_drive_instance(source="quantum")

    def test_drive_needs_exactly_one_endpoint(self):
        from repro.serve import drive

        with pytest.raises(ValueError, match="exactly one"):
            asyncio.run(drive(_fast_instance()))
        with pytest.raises(ValueError, match="exactly one"):
            asyncio.run(
                drive(_fast_instance(), socket_path="/tmp/x.sock", host="127.0.0.1", port=1)
            )
