"""Property tests for journal records (Hypothesis).

Three invariants carry the crash-recovery story:

* **round-trip** — every record survives encode → decode unchanged;
* **corruption rejection** — *any* single-character mutation of an
  encoded line is detected (JSON damage or CRC mismatch), never
  silently accepted as a different record;
* **torn-tail semantics** — whatever prefix of the final record a
  crash leaves behind, reopening the journal replays exactly the
  intact records and drops the tail (counted, never replayed).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import Journal, JournalCorruptError
from repro.serve.journal import JournalRecord, decode_record, encode_record

# JSON-safe payloads: string keys, scalar-or-nested values (the journal
# only ever stores what json.dumps emitted, so NaN never appears).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
payloads = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(scalars, st.lists(scalars, max_size=4), st.dictionaries(st.text(max_size=5), scalars, max_size=3)),
    max_size=5,
)
kinds = st.sampled_from(["submit", "kill", "revive", "redispatch", "rebalance", "complete"])
seqs = st.integers(min_value=1, max_value=2**31)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(seq=seqs, kind=kinds, data=payloads)
    def test_encode_decode_identity(self, seq, kind, data):
        record = decode_record(encode_record(seq, kind, data))
        assert record.seq == seq
        assert record.kind == kind
        # json round-trips the payload, so compare through json too.
        assert record.data == json.loads(json.dumps(data))

    @settings(max_examples=100, deadline=None)
    @given(seq=seqs, kind=kinds, data=payloads)
    def test_encoding_is_canonical(self, seq, kind, data):
        """Re-encoding a decoded record reproduces the exact line — the
        property WAL compaction relies on to rewrite without drift."""
        line = encode_record(seq, kind, data)
        record = decode_record(line)
        assert encode_record(record.seq, record.kind, record.data) == line


class TestCorruptionRejection:
    @settings(max_examples=300, deadline=None)
    @given(
        seq=seqs,
        kind=kinds,
        data=payloads,
        position=st.integers(min_value=0, max_value=10_000),
        replacement=st.characters(min_codepoint=32, max_codepoint=126),
    )
    def test_single_character_mutation_detected(self, seq, kind, data, position, replacement):
        line = encode_record(seq, kind, data)
        position %= len(line)
        if line[position] == replacement:
            return  # not a mutation
        mutated = line[:position] + replacement + line[position + 1 :]
        try:
            record = decode_record(mutated)
        except JournalCorruptError:
            return  # detected — the property holds
        # The only acceptable "success" is a mutation that left the
        # canonical envelope semantically identical (e.g. 1e2 -> 100
        # cannot happen under canonical encoding, so require identity).
        assert record == decode_record(line), "corrupt line decoded to a different record"

    @settings(max_examples=150, deadline=None)
    @given(seq=seqs, kind=kinds, data=payloads, cut=st.integers(min_value=0, max_value=10_000))
    def test_every_proper_prefix_rejected(self, seq, kind, data, cut):
        line = encode_record(seq, kind, data)
        cut %= len(line)  # strict prefix: 0 <= cut < len
        with pytest.raises(JournalCorruptError):
            decode_record(line[:cut])


class TestTornTail:
    @settings(max_examples=60, deadline=None)
    @given(
        n_records=st.integers(min_value=1, max_value=8),
        cut=st.integers(min_value=0, max_value=10_000),
        data=payloads,
    )
    def test_torn_final_record_dropped_not_replayed(self, tmp_path_factory, n_records, cut, data):
        root = tmp_path_factory.mktemp("journal")
        with Journal(root, fsync="never") as journal:
            for i in range(n_records):
                journal.append("kill", {"machine": i + 1, **{k: v for k, v in data.items() if k != "machine"}}, commit=True)
        wal = root / "wal.jsonl"
        lines = wal.read_text("utf-8").splitlines()
        intact, final = lines[:-1], lines[-1]
        cut %= len(final)  # strict prefix of the final record
        wal.write_text("".join(line + "\n" for line in intact) + final[:cut], "utf-8")
        reopened = Journal(root, fsync="never")
        try:
            records = list(reopened.records())
            assert [r.seq for r in records] == list(range(1, n_records))
            # A zero-length tear leaves no bytes to detect; any other
            # prefix is spotted and counted.
            assert reopened.n_dropped_tail == (1 if cut > 0 else 0)
            assert reopened.seq == n_records - 1
            # The next append reuses the torn record's seq — the log
            # stays gap-free for the *next* recovery.
            assert reopened.append("revive", {"machine": 1, "now": 0.0}) == n_records
        finally:
            reopened.close()

    @settings(max_examples=40, deadline=None)
    @given(n_records=st.integers(min_value=1, max_value=6))
    def test_missing_trailing_newline_alone_is_torn(self, tmp_path_factory, n_records):
        root = tmp_path_factory.mktemp("journal")
        with Journal(root, fsync="never") as journal:
            for i in range(n_records):
                journal.append("kill", {"machine": i + 1}, commit=True)
        wal = root / "wal.jsonl"
        wal.write_text(wal.read_text("utf-8")[:-1], "utf-8")  # strip final \n only
        reopened = Journal(root, fsync="never")
        try:
            assert [r.seq for r in reopened.records()] == list(range(1, n_records))
            assert reopened.n_dropped_tail == 1
        finally:
            reopened.close()
