"""Tests for shard supervision and crash recovery.

The multiprocessing cases spawn real shard servers, SIGKILL one, and
assert the acceptance property of the tentpole: the killed-and-
recovered run's merged assignment digest is byte-identical to an
uninterrupted run's.  Workloads stay tiny (m=4, 2 shards, n=80) so
each case runs in a few seconds.
"""

import pytest

from repro.serve import (
    ChaosBenchResult,
    ServeConfig,
    ShardSupervisor,
    build_drive_instance,
    run_chaos_loopback_sync,
)
from repro.serve.shard.bench import run_sharded_loopback_sync

FAST = dict(m=4, n=80, rate=400.0, k=2, strategy="disjoint", proc=0.004, seed=42)


def _fast_instance():
    return build_drive_instance(source="spec", **FAST)


def _shard_config(tmp, sid):
    return dict(
        m=2,
        scheduler="eft-min",
        seed=0,
        time_scale=1.0,
        journal_dir=str(tmp / f"journal{sid}"),
        journal_fsync="never",
    )


class TestShardSupervisor:
    def test_start_kill_poll_restart(self, tmp_path):
        supervisor = ShardSupervisor()
        supervisor.add_shard(0, _shard_config(tmp_path, 0), str(tmp_path / "s0.sock"))
        try:
            supervisor.start_all()
            assert supervisor.alive(0)
            assert supervisor.poll() == []
            supervisor.kill(0)
            assert supervisor.poll() == [0]
            assert not supervisor.alive(0)
            supervisor.restart(0)
            assert supervisor.alive(0)
            assert supervisor.poll() == []
            stats = supervisor.stats()
            assert stats["restarts"] == {0: 1}
            assert len(stats["recovery_seconds"]) == 1
            assert stats["recovery_seconds"][0] > 0
        finally:
            supervisor.stop_all()

    def test_restart_limit_enforced(self, tmp_path):
        supervisor = ShardSupervisor(restart_limit=1)
        supervisor.add_shard(0, _shard_config(tmp_path, 0), str(tmp_path / "s0.sock"))
        try:
            supervisor.start_all()
            supervisor.kill(0)
            supervisor.restart(0)
            supervisor.kill(0)
            with pytest.raises(RuntimeError, match="crash-looping"):
                supervisor.restart(0)
        finally:
            supervisor.stop_all()

    def test_unknown_shard_rejected(self, tmp_path):
        supervisor = ShardSupervisor()
        with pytest.raises(KeyError):
            supervisor.start(3)


class TestCrashRecoveryDigest:
    def test_killed_shard_recovers_to_identical_digest(self, tmp_path):
        """Tentpole acceptance: SIGKILL a shard mid-drive; after journal
        replay the merged digest byte-matches the uninterrupted run."""
        inst = _fast_instance()
        baseline = run_sharded_loopback_sync(
            inst, n_shards=2, target_rate=FAST["rate"]
        )
        result = run_chaos_loopback_sync(
            inst,
            n_shards=2,
            target_rate=FAST["rate"],
            kill_shard=0,
            kill_after=0.4,
            journal_fsync="never",
        )
        assert isinstance(result, ChaosBenchResult)
        assert result.lost == 0
        assert result.double_dispatched == 0
        assert result.killed_shards == [0]
        assert result.restarts[0] == 1
        assert len(result.recovery_seconds) == 1
        assert result.report.assignments_digest == baseline.assignments_digest

    def test_no_kill_no_chaos_matches_plain_sharded_run(self, tmp_path):
        inst = _fast_instance()
        baseline = run_sharded_loopback_sync(
            inst, n_shards=2, target_rate=FAST["rate"]
        )
        result = run_chaos_loopback_sync(
            inst, n_shards=2, target_rate=FAST["rate"], journal_fsync="never"
        )
        assert result.lost == 0
        assert result.double_dispatched == 0
        assert result.killed_shards == []
        assert result.report.assignments_digest == baseline.assignments_digest
