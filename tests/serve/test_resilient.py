"""Tests for the resilient driver: breaker, retries, dedupe idempotency.

The end-to-end cases run the real service and the real chaos proxy in
one event loop and assert the acceptance property: a drive over a
faulty transport acks every task exactly once, dispatches nothing
twice, and lands on the byte-identical assignment digest of a clean
run.
"""

import asyncio

import pytest

from repro.campaigns.runner import RetryPolicy
from repro.chaos import ChaosConfig, ChaosProxy
from repro.serve import (
    CircuitBreaker,
    ClientResilience,
    ResilienceExhausted,
    ServeConfig,
    build_drive_instance,
    build_service,
    drive_resilient,
    run_loopback_sync,
)

FAST = dict(m=4, n=40, rate=400.0, k=2, proc=0.004, seed=42)


def _fast_instance(**overrides):
    return build_drive_instance(**{"source": "spec", **FAST, **overrides})


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0)
        assert breaker.state(0.0) == "closed"
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state(2.0) == "closed"
        assert breaker.holdoff(2.0) == 0.0
        breaker.record_failure(3.0)
        assert breaker.state(3.0) == "open"
        assert breaker.holdoff(4.0) == pytest.approx(9.0)
        assert breaker.n_opens == 1

    def test_half_open_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure(0.0)
        assert breaker.state(4.9) == "open"
        assert breaker.state(5.1) == "half-open"
        assert breaker.holdoff(5.1) == 0.0

    def test_failure_while_open_restarts_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure(0.0)
        breaker.record_failure(3.0)  # the half-open probe failed
        assert breaker.holdoff(3.0) == pytest.approx(5.0)
        assert breaker.n_opens == 1  # one open episode, not two

    def test_success_closes_and_resets(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state(1.0) == "closed"  # count restarted

    @pytest.mark.parametrize("kwargs", [dict(threshold=0), dict(cooldown=-1.0)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestClientResilience:
    def test_defaults_valid(self):
        res = ClientResilience()
        assert res.make_breaker().threshold == res.breaker_threshold

    def test_bad_ack_timeout(self):
        with pytest.raises(ValueError):
            ClientResilience(ack_timeout=0.0)


async def _serve_and_drive(tmp, chaos, instance, resilience=None, config=None):
    """Run service + proxy + resilient driver; return (report, stats)."""
    service = build_service(config if config is not None else ServeConfig(m=FAST["m"]))
    await service.start()
    upstream = str(tmp / "serve.sock")
    listen = str(tmp / "proxy.sock")

    async def on_connection(reader, writer):
        await service.handle_connection(reader, writer)

    server = await asyncio.start_unix_server(on_connection, path=upstream)
    try:
        async with server, ChaosProxy(
            chaos, upstream_socket=upstream, listen_socket=listen
        ):
            report = await drive_resilient(
                instance,
                socket_path=listen,
                target_rate=FAST["rate"],
                resilience=resilience,
            )
            stats = service.stats()  # needs the running loop
    finally:
        await service.stop()
    return report, stats


class TestResilientDrive:
    def test_clean_transport_matches_plain_driver(self, tmp_path):
        inst = _fast_instance()
        baseline = run_loopback_sync(inst, ServeConfig(m=FAST["m"]), target_rate=FAST["rate"])
        report, _ = asyncio.run(_serve_and_drive(tmp_path, ChaosConfig(), inst))
        assert report.n_acked == FAST["n"]
        assert report.n_errors == 0
        assert report.n_reconnects == 0
        assert report.assignments == baseline.assignments
        assert report.assignments_digest == baseline.assignments_digest

    def test_duplicate_delivery_is_idempotent(self, tmp_path):
        """The satellite case: heavy at-least-once duplication on both
        directions, yet every task dispatches exactly once."""
        inst = _fast_instance()
        baseline = run_loopback_sync(inst, ServeConfig(m=FAST["m"]), target_rate=FAST["rate"])
        chaos = ChaosConfig(seed=13, p_duplicate=0.3)
        report, stats = asyncio.run(_serve_and_drive(tmp_path, chaos, inst))
        assert report.n_acked == FAST["n"]
        assert report.n_errors == 0
        # Duplicated submit frames reached the dispatcher's doorstep but
        # were answered from the dedupe cache: dispatch count stays n.
        assert stats["dispatched"] == FAST["n"]
        dedupe_hits = stats["metrics"]["counters"].get("dedupe_hits_total", 0)
        assert dedupe_hits > 0 or report.n_dup_acks > 0
        assert report.assignments == baseline.assignments
        assert report.assignments_digest == baseline.assignments_digest

    def test_lossy_transport_recovers_same_digest(self, tmp_path):
        inst = _fast_instance()
        baseline = run_loopback_sync(inst, ServeConfig(m=FAST["m"]), target_rate=FAST["rate"])
        chaos = ChaosConfig(seed=5, p_drop=0.03, p_truncate=0.02, p_corrupt=0.03, p_duplicate=0.05)
        resilience = ClientResilience(ack_timeout=0.5, breaker_cooldown=0.05)
        report, _ = asyncio.run(_serve_and_drive(tmp_path, chaos, inst, resilience=resilience))
        assert report.n_acked == FAST["n"]
        assert report.n_errors == 0
        assert report.n_reconnects > 0  # the chaos actually bit
        assert report.assignments_digest == baseline.assignments_digest

    def test_dead_endpoint_exhausts(self, tmp_path):
        inst = _fast_instance(n=4)
        resilience = ClientResilience(
            retry=RetryPolicy(retries=2, backoff=0.01, max_backoff=0.02),
            ack_timeout=0.2,
            breaker_cooldown=0.01,
        )
        with pytest.raises(ResilienceExhausted):
            asyncio.run(
                drive_resilient(
                    inst,
                    socket_path=str(tmp_path / "nobody-home.sock"),
                    resilience=resilience,
                )
            )

    def test_endpoint_arguments_validated(self):
        with pytest.raises(ValueError, match="exactly one"):
            asyncio.run(drive_resilient(_fast_instance(n=1)))
