"""Shadow mode vs the golden fixtures: byte-identity, not approximation.

The serving layer's core guarantee is that its dispatch decisions are
*exactly* the engine's.  These tests pin it three ways: the shadow
trace of every golden case must equal the checked-in fixture
byte-for-byte, the discrete-event simulator must produce those same
bytes, and any perturbation of the dispatcher state must be caught by
:func:`check_shadow_golden`.
"""

import pytest

from repro.campaigns.goldens import GOLDEN_CASES, GoldenMismatch, golden_path
from repro.campaigns.trace import dumps, record
from repro.serve import check_shadow_golden, shadow_golden_trace, shadow_replay
from repro.simulation.engine import Simulator

ALL_GOLDENS = sorted(GOLDEN_CASES)


@pytest.mark.parametrize("name", ALL_GOLDENS)
def test_shadow_trace_byte_identical_to_golden(name):
    shadow = shadow_golden_trace(name)
    assert dumps(shadow) == golden_path(name).read_text()


@pytest.mark.parametrize("name", ALL_GOLDENS)
def test_check_shadow_golden_passes(name):
    trace = check_shadow_golden(name)
    assert trace.n == GOLDEN_CASES[name].make_instance().n


@pytest.mark.parametrize("name", ALL_GOLDENS)
def test_simulator_emits_the_same_bytes(name):
    """Dispatcher and engine agree not just on placements but on the
    exact canonical trace bytes."""
    case = GOLDEN_CASES[name]
    scheduler = case.make_scheduler()
    sim = Simulator(scheduler)
    sim.add_instance(case.make_instance())
    result = sim.run()
    engine_trace = record(
        result.schedule,
        scheduler=scheduler.name,
        meta={"golden": name, "description": case.description},
    )
    assert dumps(engine_trace) == dumps(shadow_golden_trace(name))


@pytest.mark.parametrize("name", ALL_GOLDENS)
def test_divergence_is_detected(name, monkeypatch):
    """A dispatcher that mis-places even one task must fail the check."""
    import repro.serve.shadow as shadow_mod

    original = shadow_mod.shadow_replay

    def perturbed(instance, scheduler):
        dispatcher, decisions = original(instance, scheduler)
        tid = next(iter(dispatcher.placements))
        machine, start = dispatcher.placements[tid]
        dispatcher.placements[tid] = (machine, start + 0.125)
        return dispatcher, decisions

    monkeypatch.setattr(shadow_mod, "shadow_replay", perturbed)
    with pytest.raises(GoldenMismatch, match="diverged"):
        check_shadow_golden(name)


def test_shadow_replay_rejects_used_scheduler():
    name = ALL_GOLDENS[0]
    case = GOLDEN_CASES[name]
    scheduler = case.make_scheduler()
    instance = case.make_instance()
    shadow_replay(instance, scheduler)
    with pytest.raises(ValueError, match="fresh scheduler"):
        shadow_replay(instance, scheduler)


def test_shadow_replay_rejects_mismatched_m():
    name = ALL_GOLDENS[0]
    case = GOLDEN_CASES[name]
    other = [GOLDEN_CASES[n] for n in ALL_GOLDENS if n != name][0]
    with pytest.raises(ValueError, match="m="):
        shadow_replay(case.make_instance(), other.make_scheduler())
