"""Unit tests for the virtual-clocked dispatch decision core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EFT, Instance, Task, eft_schedule
from repro.serve import DISPATCHED, PARKED, REQUEUED, SHED, Dispatcher
from repro.simulation.engine import Simulator
from repro.simulation.workload import WorkloadSpec, generate_workload


def _random_instance(seed: int, m: int = 5, n: int = 60) -> Instance:
    spec = WorkloadSpec(m=m, n=n, lam=3.0, k=2, strategy="overlapping", case="uniform")
    return generate_workload(spec, rng=np.random.default_rng(seed))


@st.composite
def small_instances(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=0, max_value=12))
    releases = sorted(
        draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)) for _ in range(n)
    )
    tasks = []
    for i, r in enumerate(releases):
        proc = draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
        machines = draw(
            st.one_of(
                st.none(),
                st.frozensets(st.integers(min_value=1, max_value=m), min_size=1),
            )
        )
        tasks.append(Task(tid=i, release=r, proc=proc, machines=machines))
    return Instance(m=m, tasks=tuple(tasks))


class TestShadowEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_eft_schedule(self, seed):
        """Fault-free dispatcher placements == the analytic EFT run."""
        inst = _random_instance(seed)
        dispatcher = Dispatcher(EFT(inst.m, tiebreak="min"))
        for task in inst:
            decision = dispatcher.submit(task)
            assert decision.status == DISPATCHED
        assert dispatcher.schedule().same_placements(eft_schedule(inst, tiebreak="min"))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_simulator(self, seed):
        """Dispatcher and discrete-event engine take identical decisions."""
        inst = _random_instance(seed)
        dispatcher = Dispatcher(EFT(inst.m, tiebreak="min"))
        for task in inst:
            dispatcher.submit(task)
        sim = Simulator(EFT(inst.m, tiebreak="min"))
        sim.add_instance(inst)
        result = sim.run()
        assert dispatcher.schedule().same_placements(result.schedule)

    @settings(max_examples=60, deadline=None)
    @given(inst=small_instances())
    def test_matches_eft_schedule_property(self, inst):
        dispatcher = Dispatcher(EFT(inst.m, tiebreak="min"))
        for task in inst:
            dispatcher.submit(task)
        assert dispatcher.schedule().same_placements(eft_schedule(inst, tiebreak="min"))

    def test_randomised_tiebreak_reproducible(self):
        inst = _random_instance(7)
        runs = []
        for _ in range(2):
            d = Dispatcher(EFT(inst.m, tiebreak="rand", rng=42))
            for task in inst:
                d.submit(task)
            runs.append(d.placements)
        assert runs[0] == runs[1]


class TestAnalyticState:
    def test_depth_counts_uncompleted(self):
        d = Dispatcher(EFT(1, tiebreak="min"))
        d.submit(Task(tid=0, release=0.0, proc=1.0))
        d.submit(Task(tid=1, release=0.0, proc=1.0))
        assert d.depth(1, 0.0) == 2
        assert d.depth(1, 1.0) == 1  # half-open: completion at t has left
        assert d.depth(1, 2.0) == 0

    def test_waiting_work(self):
        d = Dispatcher(EFT(1, tiebreak="min"))
        d.submit(Task(tid=0, release=0.0, proc=3.0))
        assert d.waiting_work(1, 1.0) == pytest.approx(2.0)
        assert d.waiting_work(1, 5.0) == 0.0

    def test_est_flow_is_exact_for_eft(self):
        inst = _random_instance(5)
        d = Dispatcher(EFT(inst.m, tiebreak="min"))
        decisions = [d.submit(t) for t in inst]
        sched = eft_schedule(inst, tiebreak="min")
        for dec in decisions:
            assert dec.est_flow == pytest.approx(sched.flow_of(dec.task.tid))


class TestFaults:
    def test_unavailable_parks_then_unparks_on_revive(self):
        d = Dispatcher(EFT(2, tiebreak="min"))
        d.kill(1)
        task = Task(tid=0, release=0.0, proc=1.0, machines=frozenset({1}))
        assert d.submit(task).status == PARKED
        assert d.parked == [task]
        unparked = d.revive(1, now=2.0)
        assert [u.status for u in unparked] == [REQUEUED]
        assert d.parked == []
        assert d.placements[0] == (1, 2.0)

    def test_unavailable_shed_mode(self):
        d = Dispatcher(EFT(2, tiebreak="min"), on_unavailable="shed")
        d.kill(2)
        decision = d.submit(Task(tid=0, release=0.0, proc=1.0, machines=frozenset({2})))
        assert decision.status == SHED
        assert decision.reason == "unavailable"

    def test_degraded_dispatch_restricts_to_alive(self):
        d = Dispatcher(EFT(3, tiebreak="min"))
        d.kill(1)
        decision = d.submit(Task(tid=0, release=0.0, proc=1.0, machines=frozenset({1, 2})))
        assert decision.status == DISPATCHED
        assert decision.machine == 2

    def test_redispatch_least_waiting_work_smallest_index(self):
        d = Dispatcher(EFT(3, tiebreak="min"))
        # Load machine 1 with 2 units, machine 2 with 1, machine 3 with 1.
        d.submit(Task(tid=0, release=0.0, proc=2.0, machines=frozenset({1})))
        d.submit(Task(tid=1, release=0.0, proc=1.0, machines=frozenset({2})))
        d.submit(Task(tid=2, release=0.0, proc=1.0, machines=frozenset({3})))
        moved = Task(tid=3, release=0.0, proc=1.0)
        decision = d.redispatch(moved, now=0.0)
        # Machines 2 and 3 tie on waiting work 1.0: smallest index wins.
        assert decision.status == REQUEUED
        assert decision.machine == 2
        assert decision.start == pytest.approx(1.0)
        # The scheduler's books absorbed the re-placement.
        assert d.scheduler.completions[2] == pytest.approx(2.0)

    def test_kill_revive_idempotent(self):
        d = Dispatcher(EFT(2, tiebreak="min"))
        d.kill(1)
        d.kill(1)
        assert d.alive == {2}
        assert d.revive(2) == []  # already alive
        d.revive(1)
        assert d.alive == {1, 2}

    def test_invalid_machine_rejected(self):
        d = Dispatcher(EFT(2, tiebreak="min"))
        with pytest.raises(ValueError):
            d.kill(0)
        with pytest.raises(ValueError):
            d.revive(3)

    def test_invalid_on_unavailable_rejected(self):
        with pytest.raises(ValueError):
            Dispatcher(EFT(2, tiebreak="min"), on_unavailable="explode")
