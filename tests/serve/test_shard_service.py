"""Integration tests: the sharded service over a loopback socket.

All async tests run their own event loop via ``asyncio.run`` (no
asyncio pytest plugin, matching the rest of the serve suite).
"""

import asyncio

import pytest

from repro.core.task import Task
from repro.serve import (
    PROTOCOL_VERSION,
    ServeConfig,
    ShardPlan,
    ShardServeConfig,
    build_drive_instance,
    build_sharded_service,
    drive,
    read_frame,
    run_loopback_sync,
    task_to_wire,
    write_frame,
)

FAST = dict(m=6, n=60, rate=400.0, k=2, strategy="disjoint", proc=0.004, seed=42)


def _fast_instance(**overrides):
    return build_drive_instance(**{"source": "spec", **FAST, **overrides})


async def _with_service(config, fn):
    """Run ``fn(service, socket_path)`` against a started sharded
    service listening on a unix socket in a temp dir."""
    import tempfile
    from pathlib import Path

    service = build_sharded_service(config)
    await service.start()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-shard-test-") as tmp:
            socket_path = str(Path(tmp) / "shard.sock")
            server = await asyncio.start_unix_server(
                service.handle_connection, path=socket_path
            )
            async with server:
                return await fn(service, socket_path)
    finally:
        await service.stop()


class TestShardedService:
    def test_drive_matches_single_dispatcher(self):
        """The sharded frontend serves the standard driver unchanged
        and, on a disjoint plan, places exactly like one dispatcher."""
        inst = _fast_instance()

        async def go(service, socket_path):
            return await drive(inst, socket_path=socket_path, time_scale=1.0)

        config = ShardServeConfig(m=FAST["m"], shards=3, align_k=FAST["k"])
        report = asyncio.run(_with_service(config, go))
        single = run_loopback_sync(inst, ServeConfig(m=FAST["m"]), target_rate=FAST["rate"])
        assert report.n_errors == 0
        assert report.n_acked == report.n_sent == FAST["n"]
        assert report.assignments_digest == single.assignments_digest

    def test_route_op_returns_plan(self):
        async def go(service, socket_path):
            reader, writer = await asyncio.open_unix_connection(socket_path)
            await write_frame(writer, {"op": "route"})
            response = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return response

        config = ShardServeConfig(m=6, shards=3, align_k=2)
        response = asyncio.run(_with_service(config, go))
        assert response["ok"]
        plan = ShardPlan.from_json(response["plan"])
        assert plan.intervals == ((1, 2), (3, 4), (5, 6))

    def test_version_mismatch_rejected_current_accepted(self):
        async def go(service, socket_path):
            reader, writer = await asyncio.open_unix_connection(socket_path)
            await write_frame(writer, {"op": "ping", "v": PROTOCOL_VERSION + 1})
            mismatched = await read_frame(reader)
            await write_frame(writer, {"op": "ping", "v": PROTOCOL_VERSION})
            current = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return mismatched, current

        config = ShardServeConfig(m=4, shards=2)
        mismatched, current = asyncio.run(_with_service(config, go))
        assert mismatched["ok"] is False
        assert "version mismatch" in mismatched["error"]
        assert mismatched["v"] == PROTOCOL_VERSION  # this end's version echoed
        assert current["ok"] and current["op"] == "pong"

    def test_kill_revive_ops_cross_shard_handoff(self):
        """Fault injection through the router frontend: killing the
        whole owner-side fragment of a straddling set hands the next
        submit off to the neighbour shard."""

        async def go(service, socket_path):
            reader, writer = await asyncio.open_unix_connection(socket_path)

            async def rpc(message):
                await write_frame(writer, message)
                return await read_frame(reader)

            killed = await rpc({"op": "kill", "machine": 3})
            assert killed["ok"]
            submit = await rpc(
                {"op": "submit", **task_to_wire(
                    Task(tid=0, release=0.0, proc=0.004, machines=frozenset({3, 4}))
                )}
            )
            assert submit["ok"]
            assert submit["machine"] == 4
            assert submit["shard"] == 1 and submit["handoff"] is True
            revived = await rpc({"op": "revive", "machine": 3})
            assert revived["ok"] and revived["unparked"] == 0
            stats = (await rpc({"op": "stats"}))["stats"]
            drained = await rpc({"op": "drain"})
            assert drained["ok"]
            writer.close()
            await writer.wait_closed()
            return stats

        config = ShardServeConfig(m=6, shards=2)
        stats = asyncio.run(_with_service(config, go))
        assert stats["handoffs"] == 1
        assert stats["metrics"]["counters"]["router/router_handoffs_total"] == 1

    def test_whole_set_down_parks_then_revive_completes(self):
        async def go(service, socket_path):
            reader, writer = await asyncio.open_unix_connection(socket_path)

            async def rpc(message):
                await write_frame(writer, message)
                return await read_frame(reader)

            await rpc({"op": "kill", "machine": 1})
            await rpc({"op": "kill", "machine": 2})
            parked = await rpc(
                {"op": "submit", **task_to_wire(
                    Task(tid=0, release=0.0, proc=0.004, machines=frozenset({1, 2}))
                )}
            )
            assert parked["status"] == "parked"
            revived = await rpc({"op": "revive", "machine": 2})
            assert revived["unparked"] == 1
            drained = await rpc({"op": "drain"})
            writer.close()
            await writer.wait_closed()
            return drained

        config = ShardServeConfig(m=4, shards=2)
        drained = asyncio.run(_with_service(config, go))
        assert drained["completed"] == 1

    def test_fleet_stats_rollup_members(self):
        inst = _fast_instance(n=30)

        async def go(service, socket_path):
            report = await drive(inst, socket_path=socket_path, time_scale=1.0)
            return report, service.stats()

        config = ShardServeConfig(m=FAST["m"], shards=3, align_k=FAST["k"])
        report, stats = asyncio.run(_with_service(config, go))
        counters = stats["metrics"]["counters"]
        assert counters["dispatched_total"] == 30
        per_shard = [counters.get(f"shard{s}/dispatched_total", 0) for s in range(3)]
        assert sum(per_shard) == 30
        assert stats["completed"] == 30

    def test_config_validation(self):
        with pytest.raises(ValueError, match="shard"):
            ShardServeConfig(m=4, shards=0)
        with pytest.raises(ValueError, match="time_scale"):
            ShardServeConfig(m=4, shards=2, time_scale=0.0)
        config = ShardServeConfig(m=4, shards=2, intervals=((1, 1), (2, 4)))
        assert config.make_plan().intervals == ((1, 1), (2, 4))
