"""Unit tests for ShardRouter: locality, handoff, faults, rollup."""

import pytest

from repro.core.task import Task
from repro.serve import DISPATCHED, PARKED, REQUEUED, SHED, ShardPlan, ShardRouter
from repro.serve.dispatcher import Dispatcher
from repro.campaigns.trace import make_scheduler


def _task(tid, release, machines, proc=1.0):
    return Task(tid=tid, release=release, proc=proc, machines=frozenset(machines))


@pytest.fixture
def plan():
    return ShardPlan.even(6, 2)  # shards: 1..3, 4..6


class TestLocalDispatch:
    def test_local_set_goes_to_owner_shard(self, plan):
        router = ShardRouter(plan)
        routed = router.submit(_task(0, 0.0, {1, 2}))
        assert routed.status == DISPATCHED
        assert routed.shard == 0 and not routed.handoff
        assert routed.machine in {1, 2}

    def test_matches_single_dispatcher_on_disjoint_stream(self):
        plan = ShardPlan.aligned(6, 2, 3)
        router = ShardRouter(plan, scheduler="eft-min")
        single = Dispatcher(make_scheduler("eft-min", 6))
        tasks = [
            _task(i, 0.1 * i, {1 + 2 * (i % 3), 2 + 2 * (i % 3)}, proc=0.7)
            for i in range(30)
        ]
        for t in tasks:
            r = router.submit(t)
            d = single.submit(t)
            assert (r.machine, r.decision.start) == (d.machine, d.start)
        assert router.placements == single.placements

    def test_original_task_kept_in_merged_books(self, plan):
        router = ShardRouter(plan)
        router.submit(_task(0, 0.0, {3, 4}))  # straddling: shard sees {3}
        sched = router.schedule()
        assert sched.instance[0].machines == frozenset({3, 4})


class TestHandoff:
    def test_straddler_stays_on_owner_while_alive(self, plan):
        router = ShardRouter(plan)
        routed = router.submit(_task(0, 0.0, {3, 4}))
        assert routed.shard == 0 and routed.machine == 3 and not routed.handoff

    def test_dead_owner_fragment_hands_off(self, plan):
        router = ShardRouter(plan)
        router.kill(3)
        routed = router.submit(_task(0, 0.0, {3, 4}))
        assert routed.handoff
        assert routed.shard == 1 and routed.machine == 4
        assert routed.status == REQUEUED
        assert router.n_handoffs == 1

    def test_handoff_picks_least_waiting_work(self, plan):
        router = ShardRouter(plan)
        router.kill(3)
        # Load machine 4 so the handoff target 5 (in the same set? no —
        # set {3,4} only) still lands on 4; use set {3,4,5} to see the rule.
        router.dispatchers[1].submit(_task(99, 0.0, {4}, proc=5.0))
        routed = router.submit(_task(0, 0.0, {3, 4, 5}))
        assert routed.machine == 5  # 4 has 5 units of waiting work

    def test_whole_set_dead_parks_then_revives(self, plan):
        router = ShardRouter(plan)
        router.kill(3)
        router.kill(4)
        routed = router.submit(_task(0, 0.0, {3, 4}))
        assert routed.status == PARKED and routed.shard is None
        assert router.parked
        replaced = router.revive(4, now=0.5)
        assert [r.status for r in replaced] == [REQUEUED]
        assert replaced[0].machine == 4
        assert not router.parked

    def test_shed_mode(self, plan):
        router = ShardRouter(plan, on_unavailable="shed")
        router.kill(3)
        router.kill(4)
        routed = router.submit(_task(0, 0.0, {3, 4}))
        assert routed.status == SHED
        assert router.n_shed == 1

    def test_redispatch_routes_fleet_wide(self, plan):
        router = ShardRouter(plan)
        t = _task(0, 0.0, {3, 4})
        router.submit(t)
        router.kill(3)
        routed = router.redispatch(t, now=0.2)
        assert routed.machine == 4 and routed.shard == 1


class TestMetrics:
    def test_fleet_rollup_sums_shards(self, plan):
        router = ShardRouter(plan)
        router.submit(_task(0, 0.0, {1, 2}))
        router.submit(_task(1, 0.0, {5, 6}))
        snap = router.fleet_registry().snapshot()
        assert snap["counters"]["dispatched_total"] == 2
        assert snap["counters"]["shard0/dispatched_total"] == 1
        assert snap["counters"]["shard1/dispatched_total"] == 1
        assert snap["counters"]["router/router_routed_total"] == 2

    def test_stats_shape(self, plan):
        router = ShardRouter(plan)
        router.submit(_task(0, 0.0, {1, 2}))
        stats = router.stats()
        assert stats["routed"] == 1
        assert [s["machines"] for s in stats["shards"]] == [[1, 3], [4, 6]]


class TestValidation:
    def test_bad_on_unavailable(self, plan):
        with pytest.raises(ValueError, match="on_unavailable"):
            ShardRouter(plan, on_unavailable="explode")

    def test_shard_local_admission(self, plan):
        router = ShardRouter(plan, max_queue_depth=1)
        assert router.submit(_task(0, 0.0, {1}, proc=5.0)).status == DISPATCHED
        assert router.submit(_task(1, 0.0, {1}, proc=5.0)).status == SHED
        # The other shard's ceiling is untouched.
        assert router.submit(_task(2, 0.0, {4}, proc=5.0)).status == DISPATCHED


class TestSupervision:
    def test_detached_owner_hands_off(self, plan):
        router = ShardRouter(plan)
        router.detach_shard(0)
        routed = router.submit(_task(0, 0.0, {1, 2, 4}))
        # The owner's process is down: even though its alive-bits say
        # otherwise, the submit must land on the surviving shard.
        assert routed.handoff
        assert routed.shard == 1 and routed.machine == 4

    def test_detached_only_set_parks_then_unparks_on_reattach(self, plan):
        router = ShardRouter(plan)
        router.detach_shard(0)
        routed = router.submit(_task(0, 0.0, {1, 2}))
        assert routed.status == PARKED
        replaced = router.reattach_shard(0, now=1.0)
        assert [r.decision.task.tid for r in replaced] == [0]
        assert replaced[0].status == REQUEUED
        assert replaced[0].machine in {1, 2}

    def test_detach_is_idempotent_and_counted(self, plan):
        router = ShardRouter(plan)
        router.detach_shard(1)
        router.detach_shard(1)
        assert router.stats()["down_shards"] == [1]
        snap = router.router_registry.snapshot()
        assert snap["counters"]["router_detached_total"] == 1
        assert snap["gauges"]["router_shards_down"] == 1

    def test_reattach_with_recovered_dispatcher_replaces_books(self, plan):
        router = ShardRouter(plan)
        router.submit(_task(0, 0.0, {1, 2}))
        router.detach_shard(0)
        recovered = Dispatcher(make_scheduler(router.scheduler_name, 6))
        recovered.submit(_task(0, 0.0, frozenset({1, 2})))
        router.reattach_shard(0, dispatcher=recovered)
        assert router.dispatchers[0] is recovered
        assert router.stats()["down_shards"] == []
        # Routing to the rejoined shard works again.
        routed = router.submit(_task(1, 0.5, {1, 2}))
        assert routed.shard == 0 and not routed.handoff

    def test_reattach_rejects_mismatched_dispatcher(self, plan):
        router = ShardRouter(plan)
        router.detach_shard(0)
        with pytest.raises(ValueError, match="m="):
            router.reattach_shard(0, dispatcher=Dispatcher(make_scheduler("eft-min", 4)))

    def test_out_of_range_shard_rejected(self, plan):
        router = ShardRouter(plan)
        with pytest.raises(ValueError, match="out of range"):
            router.detach_shard(2)
        with pytest.raises(ValueError, match="out of range"):
            router.reattach_shard(-1)
