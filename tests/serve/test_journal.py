"""Unit tests for the write-ahead journal and crash recovery."""

import json

import numpy as np
import pytest

from repro.core import EFT
from repro.serve import Dispatcher, Journal, JournalCorruptError, JournalError
from repro.serve.journal import JournalRecord, decode_record, encode_record, recover
from repro.serve.protocol import task_to_wire
from repro.simulation.workload import WorkloadSpec, generate_workload


def _instance(seed: int = 0, m: int = 4, n: int = 30):
    spec = WorkloadSpec(m=m, n=n, lam=3.0, k=2, strategy="overlapping", case="uniform")
    return generate_workload(spec, rng=np.random.default_rng(seed))


def _journal_a_drive(root, inst, kill_at=None, fsync="never"):
    """Drive a dispatcher while journaling every transition; return it."""
    dispatcher = Dispatcher(EFT(inst.m, tiebreak="min"))
    journal = Journal(root, fsync=fsync)
    tasks = list(inst)
    for i, task in enumerate(tasks):
        if kill_at is not None and i == kill_at:
            journal.append("kill", {"machine": 1}, commit=True)
            dispatcher.kill(1)
        journal.append(
            "submit",
            {"task": task_to_wire(task), "dedupe": f"t:{task.tid}"},
            commit=True,
        )
        dispatcher.submit(task)
    return dispatcher, journal


class TestRecordCodec:
    def test_roundtrip(self):
        line = encode_record(3, "submit", {"task": {"tid": 1}, "dedupe": "x:1"})
        record = decode_record(line)
        assert record == JournalRecord(seq=3, kind="submit", data={"task": {"tid": 1}, "dedupe": "x:1"})

    def test_bad_json_rejected(self):
        with pytest.raises(JournalCorruptError, match="undecodable"):
            decode_record("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(JournalCorruptError, match="object"):
            decode_record("[1, 2]")

    def test_missing_field_rejected(self):
        line = encode_record(1, "kill", {"machine": 2})
        envelope = json.loads(line)
        del envelope["crc"]
        with pytest.raises(JournalCorruptError, match="missing"):
            decode_record(json.dumps(envelope))

    def test_crc_mismatch_rejected(self):
        line = encode_record(1, "kill", {"machine": 2})
        tampered = line.replace('"machine":2', '"machine":3')
        with pytest.raises(JournalCorruptError, match="CRC"):
            decode_record(tampered)

    def test_wrong_version_rejected(self):
        line = encode_record(1, "kill", {"machine": 2})
        envelope = json.loads(line)
        envelope["v"] = 99
        with pytest.raises(JournalCorruptError, match="version"):
            decode_record(json.dumps(envelope))

    @pytest.mark.parametrize("seq", [0, -1, 1.5, "3", True])
    def test_bad_seq_rejected(self, seq):
        line = encode_record(1, "kill", {"machine": 2})
        envelope = json.loads(line)
        envelope["seq"] = seq
        with pytest.raises(JournalCorruptError):
            decode_record(json.dumps(envelope))


class TestJournalFile:
    def test_append_reopen_roundtrip(self, tmp_path):
        with Journal(tmp_path, fsync="never") as journal:
            journal.append("kill", {"machine": 1})
            journal.append("revive", {"machine": 1, "now": 2.5}, commit=True)
            assert journal.seq == 2
        reopened = Journal(tmp_path, fsync="never")
        records = list(reopened.records())
        assert [(r.seq, r.kind) for r in records] == [(1, "kill"), (2, "revive")]
        assert reopened.seq == 2
        assert reopened.n_dropped_tail == 0
        reopened.close()

    def test_invalid_fsync_policy(self, tmp_path):
        with pytest.raises(JournalError, match="fsync"):
            Journal(tmp_path, fsync="sometimes")

    def test_invalid_batch_size(self, tmp_path):
        with pytest.raises(JournalError, match="batch_records"):
            Journal(tmp_path, batch_records=0)

    def test_append_after_close_raises(self, tmp_path):
        journal = Journal(tmp_path, fsync="never")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append("kill", {"machine": 1})

    def test_torn_tail_dropped_and_counted(self, tmp_path):
        with Journal(tmp_path, fsync="never") as journal:
            journal.append("kill", {"machine": 1}, commit=True)
            journal.append("revive", {"machine": 1, "now": 1.0}, commit=True)
        wal = tmp_path / "wal.jsonl"
        intact = wal.read_text("utf-8")
        # Crash mid-append: half a record, no trailing newline.
        wal.write_text(intact + encode_record(3, "kill", {"machine": 2})[:13], "utf-8")
        reopened = Journal(tmp_path, fsync="never")
        assert reopened.n_dropped_tail == 1
        assert [r.seq for r in reopened.records()] == [1, 2]
        assert reopened.seq == 2
        reopened.close()
        # The torn tail was compacted away: a second reopen is clean.
        again = Journal(tmp_path, fsync="never")
        assert again.n_dropped_tail == 0
        assert [r.seq for r in again.records()] == [1, 2]
        again.close()

    def test_corrupt_last_line_dropped_even_with_newline(self, tmp_path):
        with Journal(tmp_path, fsync="never") as journal:
            journal.append("kill", {"machine": 1}, commit=True)
        wal = tmp_path / "wal.jsonl"
        line = encode_record(2, "kill", {"machine": 2})
        wal.write_text(wal.read_text("utf-8") + line.replace('"machine":2', '"machine":3') + "\n")
        reopened = Journal(tmp_path, fsync="never")
        assert reopened.n_dropped_tail == 1
        assert [r.seq for r in reopened.records()] == [1]
        reopened.close()

    def test_mid_log_corruption_raises(self, tmp_path):
        with Journal(tmp_path, fsync="never") as journal:
            for machine in (1, 2, 3):
                journal.append("kill", {"machine": machine}, commit=True)
        wal = tmp_path / "wal.jsonl"
        lines = wal.read_text("utf-8").splitlines()
        lines[0] = lines[0].replace('"machine":1', '"machine":9')
        wal.write_text("\n".join(lines) + "\n", "utf-8")
        with pytest.raises(JournalCorruptError, match="CRC"):
            Journal(tmp_path, fsync="never")

    def test_sequence_gap_raises(self, tmp_path):
        # The gap must sit *before* an intact record — a gap at the very
        # tail is indistinguishable from a torn append and is dropped.
        wal = tmp_path / "wal.jsonl"
        wal.write_text(
            encode_record(1, "kill", {"machine": 1})
            + "\n"
            + encode_record(3, "kill", {"machine": 2})
            + "\n"
            + encode_record(4, "kill", {"machine": 3})
            + "\n",
            "utf-8",
        )
        with pytest.raises(JournalCorruptError, match="gap"):
            Journal(tmp_path, fsync="never")


class TestRecovery:
    def test_recovered_dispatcher_matches_live(self, tmp_path):
        inst = _instance(seed=1)
        live, journal = _journal_a_drive(tmp_path, inst, kill_at=10)
        journal.close()
        recovery = Dispatcher.recover(Journal(tmp_path, fsync="never"), EFT(inst.m, tiebreak="min"))
        assert recovery.dispatcher.placements == live.placements
        assert recovery.dispatcher.alive == live.alive
        assert recovery.n_replayed == len(inst) + 1  # submits + the kill
        assert recovery.n_dropped_tail == 0

    def test_dedupe_cache_rebuilt(self, tmp_path):
        inst = _instance(seed=2, n=12)
        live, journal = _journal_a_drive(tmp_path, inst)
        journal.close()
        recovery = Dispatcher.recover(Journal(tmp_path, fsync="never"), EFT(inst.m, tiebreak="min"))
        assert set(recovery.dedupe) == {f"t:{task.tid}" for task in inst}
        for task in inst:
            decision = recovery.dedupe[f"t:{task.tid}"]
            assert decision.task == task
            assert decision.machine == live.placements[task.tid][0]

    def test_pending_excludes_completed(self, tmp_path):
        inst = _instance(seed=3, n=10)
        _, journal = _journal_a_drive(tmp_path, inst)
        done = [task.tid for task in list(inst)[:4]]
        for tid in done:
            journal.append("complete", {"tid": tid})
        journal.close()
        recovery = Dispatcher.recover(Journal(tmp_path, fsync="never"), EFT(inst.m, tiebreak="min"))
        assert recovery.completed == set(done)
        pending = recovery.pending()
        assert [tid for tid, _ in pending] == sorted(
            task.tid for task in inst if task.tid not in set(done)
        )
        for tid, machine in pending:
            assert machine == recovery.dispatcher.placements[tid][0]

    def test_snapshot_compacts_and_recovers(self, tmp_path):
        inst = _instance(seed=4, n=20)
        tasks = list(inst)
        live = Dispatcher(EFT(inst.m, tiebreak="min"))
        journal = Journal(tmp_path, fsync="never")
        for task in tasks[:12]:
            journal.append("submit", {"task": task_to_wire(task)}, commit=True)
            live.submit(task)
        journal.write_snapshot({"dispatcher": live.state_dict(), "service": {}})
        assert not list(journal.records())  # WAL compacted to empty suffix
        for task in tasks[12:]:
            journal.append("submit", {"task": task_to_wire(task)}, commit=True)
            live.submit(task)
        journal.close()
        reopened = Journal(tmp_path, fsync="never")
        assert reopened.snapshot_seq == 12
        assert len(list(reopened.records())) == len(tasks) - 12
        recovery = Dispatcher.recover(reopened, EFT(inst.m, tiebreak="min"))
        assert recovery.dispatcher.placements == live.placements
        assert recovery.n_replayed == len(tasks) - 12

    def test_replay_rejects_unknown_kind(self, tmp_path):
        journal = Journal(tmp_path, fsync="never")
        journal.append("launch-missiles", {}, commit=True)
        journal.close()
        with pytest.raises(JournalCorruptError, match="unknown"):
            recover(Journal(tmp_path, fsync="never"), lambda: Dispatcher(EFT(2, tiebreak="min")))

    def test_replay_counts_rejected_operations(self, tmp_path):
        inst = _instance(seed=5, n=6)
        _, journal = _journal_a_drive(tmp_path, inst)
        # The live path journaled the op, then the scheduler rejected it
        # (out-of-order release); replay must absorb the same rejection.
        stale = list(inst)[0]
        journal.append("submit", {"task": task_to_wire(stale)}, commit=True)
        journal.close()
        recovery = Dispatcher.recover(Journal(tmp_path, fsync="never"), EFT(inst.m, tiebreak="min"))
        assert recovery.n_replay_errors == 1
        assert len(recovery.dispatcher.placements) == len(inst)
