"""Unit tests for ShardPlan: constructors, routing, handoff sets."""

import pytest

from repro.psets.replication import get_strategy
from repro.serve import ShardPlan


def _family(strategy: str, m: int, k: int):
    strat = get_strategy(strategy, m, k)
    return [strat.replicas(u) for u in range(1, m + 1)]


class TestConstruction:
    def test_single(self):
        plan = ShardPlan.single(5)
        assert plan.n_shards == 1
        assert plan.machines(0) == frozenset(range(1, 6))

    def test_even_split(self):
        plan = ShardPlan.even(10, 3)
        assert plan.intervals == ((1, 4), (5, 7), (8, 10))
        assert [plan.shard_of(j) for j in (1, 4, 5, 7, 8, 10)] == [0, 0, 1, 1, 2, 2]

    def test_intervals_must_cover(self):
        with pytest.raises(ValueError, match="cover"):
            ShardPlan(m=4, intervals=((1, 2), (4, 4)))
        with pytest.raises(ValueError, match="consecutive|cover"):
            ShardPlan(m=4, intervals=((2, 4),))

    def test_aligned_respects_group_boundaries(self):
        # m=6, k=2: groups {1,2} {3,4} {5,6}; 3 shards = one group each.
        plan = ShardPlan.aligned(6, 2, 3)
        assert plan.intervals == ((1, 2), (3, 4), (5, 6))
        assert plan.is_disjoint_for(_family("disjoint", 6, 2))

    def test_aligned_uneven_groups(self):
        # m=7, k=3: groups {1..3} {4..6} {7}; 2 shards -> 2+1 groups.
        plan = ShardPlan.aligned(7, 3, 2)
        assert plan.intervals == ((1, 6), (7, 7))
        assert plan.is_disjoint_for(_family("disjoint", 7, 3))

    def test_aligned_too_many_shards(self):
        with pytest.raises(ValueError, match="disjoint groups"):
            ShardPlan.aligned(6, 2, 4)

    def test_for_family_disjoint(self):
        fam = _family("disjoint", 6, 2)
        plan = ShardPlan.for_family(fam, 6, 3)
        assert plan.n_shards == 3
        assert plan.is_disjoint_for(fam)

    def test_for_family_respects_gapped_spans(self):
        # {1, 3} must keep machines 1..3 in one shard even though 2 is absent.
        plan = ShardPlan.for_family([{1, 3}, {4}, {5, 6}], 6, 2)
        assert plan.shard_of(1) == plan.shard_of(3)

    def test_for_family_rejects_ring_wrap(self):
        with pytest.raises(ValueError, match="ring seam"):
            ShardPlan.for_family(_family("overlapping", 6, 2), 6, 2)

    def test_for_family_rejects_overconstrained(self):
        # Spans 1..5 and 2..6 jointly forbid every interior cut, yet no
        # single set wraps the seam — the cut-count check must fire.
        with pytest.raises(ValueError, match="admits only"):
            ShardPlan.for_family([set(range(1, 6)), set(range(2, 7))], 6, 2)


class TestRouting:
    def test_local_route(self):
        plan = ShardPlan.even(6, 2)
        route = plan.route({1, 2})
        assert route.is_local and route.owner == 0
        assert route.owner_fragment == frozenset({1, 2})

    def test_straddling_route_owned_by_ring_start(self):
        plan = ShardPlan.even(6, 2)
        route = plan.route({3, 4})  # ring interval starting at 3 (shard 0)
        assert not route.is_local
        assert route.owner == 0
        assert route.fragment(0) == frozenset({3})
        assert route.fragment(1) == frozenset({4})

    def test_wrapped_ring_interval_owner(self):
        plan = ShardPlan.even(6, 2)
        route = plan.route({6, 1})  # I_2(6) wraps: start machine 6 -> shard 1
        assert route.owner == 1

    def test_non_interval_owner_is_largest_fragment(self):
        plan = ShardPlan.even(6, 2)
        route = plan.route({1, 4, 5})  # not a ring interval
        assert route.owner == 1  # fragment {4,5} beats {1}

    def test_route_rejects_bad_sets(self):
        plan = ShardPlan.even(4, 2)
        with pytest.raises(ValueError, match="empty"):
            plan.route(set())
        with pytest.raises(ValueError, match="outside"):
            plan.route({0, 1})

    def test_handoff_sets_bounded(self):
        m, k, n_shards = 12, 3, 4
        plan = ShardPlan.even(m, n_shards)
        handoff = plan.handoff_sets(_family("overlapping", m, k))
        assert 0 < len(handoff) <= n_shards * (k - 1)
        local = [s for s in _family("overlapping", m, k) if plan.route(s).is_local]
        assert len(local) + len(handoff) == m  # every ring set classified once

    def test_disjoint_family_has_no_handoff(self):
        plan = ShardPlan.aligned(6, 2, 3)
        assert plan.handoff_sets(_family("disjoint", 6, 2)) == []


class TestSerialisation:
    def test_json_roundtrip(self):
        plan = ShardPlan.even(9, 4)
        assert ShardPlan.from_json(plan.to_json()) == plan

    def test_describe_mentions_every_shard(self):
        text = ShardPlan.even(6, 3).describe()
        assert "3 shard(s)" in text
        for sid in range(3):
            assert f"shard {sid}" in text
