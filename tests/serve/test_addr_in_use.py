"""Tests for endpoint-contention handling: typed error, CLI exit code.

Unix sockets need special care: ``asyncio.start_unix_server`` silently
*unlinks* an existing socket path — even one with a live listener — so
the serve tier probes the path first and refuses to steal an active
endpoint, while still rebinding over a stale socket file left by a
dead process.
"""

import asyncio
import os
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve import AddressInUseError, ServeConfig, serve
from repro.serve.frontend import start_endpoint


def _hold_unix(path):
    held = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    held.bind(str(path))
    held.listen(8)
    return held


async def _noop_connection(reader, writer):
    writer.close()


class TestStartEndpoint:
    def test_unix_active_listener_refused(self, tmp_path):
        path = tmp_path / "busy.sock"
        held = _hold_unix(path)
        try:
            with pytest.raises(AddressInUseError) as info:
                asyncio.run(start_endpoint(_noop_connection, socket_path=path))
            assert info.value.endpoint == str(path)
            # The endpoint was NOT stolen: the socket file still answers.
            assert path.exists()
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(str(path))
            probe.close()
        finally:
            held.close()

    def test_unix_stale_socket_rebound(self, tmp_path):
        path = tmp_path / "stale.sock"
        _hold_unix(path).close()  # dead listener leaves the file behind
        assert path.exists()

        async def go():
            server = await start_endpoint(_noop_connection, socket_path=path)
            server.close()
            await server.wait_closed()

        asyncio.run(go())  # no AddressInUseError

    def test_unix_plain_file_blocks_without_clobbering(self, tmp_path):
        # A regular file at the path is not a live listener, but bind
        # still fails EADDRINUSE (asyncio only unlinks *sockets*) — the
        # typed error fires and the file survives untouched.
        path = tmp_path / "not-a-socket"
        path.write_text("hello")
        with pytest.raises(AddressInUseError):
            asyncio.run(start_endpoint(_noop_connection, socket_path=path))
        assert path.read_text() == "hello"

    def test_tcp_port_in_use_typed(self):
        held = socket.socket()
        held.bind(("127.0.0.1", 0))
        held.listen(8)
        port = held.getsockname()[1]
        try:
            with pytest.raises(AddressInUseError) as info:
                asyncio.run(start_endpoint(_noop_connection, host="127.0.0.1", port=port))
            assert info.value.endpoint == f"127.0.0.1:{port}"
        finally:
            held.close()

    def test_serve_raises_typed_error(self, tmp_path):
        path = tmp_path / "busy.sock"
        held = _hold_unix(path)
        try:
            with pytest.raises(AddressInUseError):
                asyncio.run(serve(ServeConfig(m=2), socket_path=str(path)))
        finally:
            held.close()


class TestCLIExitCode:
    def _run_cli(self, *args):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )

    def test_serve_exits_4_on_busy_socket(self, tmp_path):
        path = tmp_path / "busy.sock"
        held = _hold_unix(path)
        try:
            proc = self._run_cli("serve", "--socket", str(path), "--m", "2")
        finally:
            held.close()
        assert proc.returncode == 4
        assert "address" in proc.stdout.lower() + proc.stderr.lower()
        assert "Traceback" not in proc.stderr

    def test_serve_sharded_exits_4_on_busy_port(self):
        held = socket.socket()
        held.bind(("127.0.0.1", 0))
        held.listen(8)
        port = held.getsockname()[1]
        try:
            proc = self._run_cli(
                "serve-sharded",
                "--host",
                "127.0.0.1",
                "--port",
                str(port),
                "--m",
                "4",
                "--shards",
                "2",
            )
        finally:
            held.close()
        assert proc.returncode == 4
        assert "Traceback" not in proc.stderr
