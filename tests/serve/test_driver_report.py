"""Unit tests for driver-side reporting: percentile and report merging."""

import pytest

from repro.serve import DriveReport, percentile


class TestPercentile:
    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError, match="empty sequence"):
            percentile([], 0.5)

    def test_single_value(self):
        assert percentile([3.5], 0.0) == 3.5
        assert percentile([3.5], 1.0) == 3.5

    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 3.0  # round(0.5 * 3) = 2 -> sorted[2]


def _report(**kwargs):
    defaults = dict(n_sent=2, n_acked=2, n_dispatched=2, elapsed=1.0)
    return DriveReport(**{**defaults, **kwargs})


class TestMerge:
    def test_merge_of_nothing_raises(self):
        with pytest.raises(ValueError, match="no reports"):
            DriveReport.merge([])

    def test_counters_sum_and_elapsed_is_max(self):
        a = _report(n_shed=1, elapsed=0.5, shed_by_reason={"slo": 1})
        b = _report(n_parked=1, n_errors=1, elapsed=2.0, shed_by_reason={"slo": 2, "queue_full": 1})
        merged = DriveReport.merge([a, b])
        assert merged.n_sent == 4 and merged.n_acked == 4
        assert merged.n_shed == 1 and merged.n_parked == 1 and merged.n_errors == 1
        assert merged.elapsed == 2.0
        assert merged.shed_by_reason == {"slo": 3, "queue_full": 1}

    def test_target_rate_sums_or_none(self):
        assert DriveReport.merge([_report(), _report()]).target_rate is None
        merged = DriveReport.merge([_report(target_rate=100.0), _report(target_rate=50.0)])
        assert merged.target_rate == 150.0

    def test_assignments_reassembled_in_order(self):
        a = _report(assignments=[(0, 1), (4, 2)], est_flows=[0.1, 0.2])
        b = _report(assignments=[(3, 5), (1, 6)], est_flows=[0.3, 0.4])
        merged = DriveReport.merge([a, b], order=[0, 1, 3, 4])
        assert merged.assignments == [(0, 1), (1, 6), (3, 5), (4, 2)]
        assert merged.est_flows == [0.1, 0.4, 0.3, 0.2]

    def test_digest_matches_single_report_of_same_stream(self):
        full = _report(assignments=[(0, 1), (1, 6), (3, 5), (4, 2)], est_flows=[0.0] * 4)
        a = _report(assignments=[(0, 1), (4, 2)], est_flows=[0.0] * 2)
        b = _report(assignments=[(3, 5), (1, 6)], est_flows=[0.0] * 2)
        merged = DriveReport.merge([a, b], order=[0, 1, 3, 4])
        assert merged.assignments_digest == full.assignments_digest

    def test_tid_order_fallback(self):
        a = _report(assignments=[(7, 1)], est_flows=[0.0])
        b = _report(assignments=[(2, 3)], est_flows=[0.0])
        merged = DriveReport.merge([a, b])
        assert merged.assignments == [(2, 3), (7, 1)]

    def test_server_stats_rolled_up(self):
        a = _report(server_stats={"completed": 2, "metrics": {"counters": {"dispatched_total": 2}}})
        b = _report(server_stats={"completed": 3, "metrics": {"counters": {"dispatched_total": 3}}})
        merged = DriveReport.merge([a, b])
        assert merged.server_stats["completed"] == 5
        assert merged.server_stats["metrics"]["counters"]["dispatched_total"] == 5
        assert len(merged.server_stats["shards"]) == 2

    def test_to_text_of_merged_report_is_renderable(self):
        a = _report(assignments=[(0, 1)], est_flows=[0.5], target_rate=10.0)
        b = _report(assignments=[(1, 2)], est_flows=[0.7], target_rate=10.0)
        text = DriveReport.merge([a, b]).to_text()
        assert "assignments sha256:" in text
        assert "target 20.0 rps" in text
