"""Sharded shadow mode vs the golden fixtures: byte-identity per shard.

Theorem 6's composition argument says per-shard EFT over a disjoint
partition makes exactly the fleet-wide EFT decisions.  These tests pin
that at the byte level: the merged sharded trace must equal the
checked-in golden file byte-for-byte, and each shard's record lines
must equal the golden's lines filtered to that shard's tasks.
"""

import pytest

from repro.campaigns.goldens import GOLDEN_CASES, GoldenMismatch, golden_path
from repro.campaigns.trace import dumps
from repro.serve import ShardPlan, check_shard_shadow_golden, shard_shadow_traces


@pytest.mark.parametrize("n_shards", [2, 3])
def test_disjoint_golden_byte_identical_sharded(n_shards):
    merged, per_shard = check_shard_shadow_golden("eft-min-m6-disjoint", n_shards)
    assert merged.n == 36
    assert len(per_shard) == n_shards
    assert sum(t.n for t in per_shard.values()) == merged.n


def test_single_shard_reduces_to_plain_shadow():
    merged, per_shard = check_shard_shadow_golden("eft-min-m4", 1)
    assert list(per_shard) == [0]
    assert dumps(merged) == golden_path("eft-min-m4").read_text()


def test_overlapping_family_rejects_multi_shard():
    # Ring replication wraps the seam; no cross-talk-free cut exists.
    with pytest.raises(ValueError, match="ring seam"):
        check_shard_shadow_golden("eft-min-m4", 2)


def test_randomised_scheduler_rejected():
    # Per-shard RNG streams cannot reproduce the global draw sequence.
    with pytest.raises(ValueError, match="deterministic"):
        check_shard_shadow_golden("eft-rand-m5", 2)


def test_shard_traces_carry_shard_meta():
    case = GOLDEN_CASES["eft-min-m6-disjoint"]
    instance = case.make_instance()
    plan = ShardPlan.for_family(instance.processing_sets(), 6, 2)
    merged, per_shard = shard_shadow_traces(instance, plan, "eft-min")
    for sid, trace in per_shard.items():
        assert trace.meta["shard"] == sid


def test_divergence_is_detected(monkeypatch):
    import repro.serve.shard.shadow as shadow_mod

    original = shadow_mod.shard_shadow_replay

    def perturbed(instance, plan, scheduler, seed=0):
        router, decisions = original(instance, plan, scheduler, seed)
        tid = next(iter(router.placements))
        machine, start = router.placements[tid]
        router.placements[tid] = (machine, start + 0.125)
        return router, decisions

    monkeypatch.setattr(shadow_mod, "shard_shadow_replay", perturbed)
    with pytest.raises(GoldenMismatch):
        check_shard_shadow_golden("eft-min-m6-disjoint", 2)
