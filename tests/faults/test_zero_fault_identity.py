"""Zero-fault identity: an empty FaultSchedule must be a no-op, byte-for-byte.

The fault layer's cardinal rule — running the simulator with
``faults=FaultSchedule()`` (or ``faults=None``) must produce *exactly*
the artefacts of the pre-fault-injection engine on the golden
workloads: identical serialised traces and identical ``repro-metrics``
snapshots.  Any float reordering, eager metric creation, or task-object
substitution in the fault paths shows up here as a byte diff.
"""

import pytest

from repro.campaigns import dumps_trace, record
from repro.campaigns.goldens import GOLDEN_CASES
from repro.faults import FaultSchedule
from repro.obs.sim import SimRecorder
from repro.obs.snapshot import metrics_snapshot, metrics_to_json
from repro.simulation import Simulator


def run_sim(name, faults):
    case = GOLDEN_CASES[name]
    recorder = SimRecorder()
    sim = Simulator(case.make_scheduler(), obs=recorder, faults=faults)
    sim.add_instance(case.make_instance())
    result = sim.run()
    trace_bytes = dumps_trace(
        record(result.schedule, scheduler=sim.scheduler.name, meta={"golden": name})
    )
    metrics_bytes = metrics_to_json(metrics_snapshot(recorder.registry))
    return result, trace_bytes, metrics_bytes


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
class TestZeroFaultIdentity:
    def test_trace_bytes_identical(self, name):
        _, baseline, _ = run_sim(name, faults=None)
        _, empty, _ = run_sim(name, faults=FaultSchedule())
        assert baseline == empty

    def test_metrics_snapshot_bytes_identical(self, name):
        _, _, baseline = run_sim(name, faults=None)
        _, _, empty = run_sim(name, faults=FaultSchedule())
        assert baseline == empty

    def test_no_fault_metric_families_appear(self, name):
        _, _, metrics = run_sim(name, faults=FaultSchedule())
        for family in ("machine_failures", "machine_down", "tasks_requeued",
                       "tasks_parked", "downtime_total"):
            assert family not in metrics

    def test_result_fields_identical(self, name):
        base, _, _ = run_sim(name, faults=None)
        empty, _, _ = run_sim(name, faults=FaultSchedule())
        assert base.max_flow == empty.max_flow
        assert base.mean_flow == empty.mean_flow
        assert base.makespan == empty.makespan
        assert base.utilization == empty.utilization
        assert empty.n_requeued == 0
        assert empty.total_downtime == 0.0
