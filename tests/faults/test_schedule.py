"""FaultSchedule: validation, normalisation, queries, chaos generator."""

import json

import pytest

from repro.faults import FaultSchedule, Outage, chaos_schedule


class TestOutage:
    def test_valid(self):
        o = Outage(machine=2, start=1.0, end=3.5)
        assert o.duration == 2.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(machine=0, start=0.0, end=1.0),
            dict(machine=1, start=-0.5, end=1.0),
            dict(machine=1, start=2.0, end=2.0),
            dict(machine=1, start=2.0, end=1.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            Outage(**kwargs)


class TestNormalisation:
    def test_overlapping_windows_merge(self):
        s = FaultSchedule.build([(1, 0.0, 2.0), (1, 1.0, 3.0)])
        assert s.outages == (Outage(machine=1, start=0.0, end=3.0),)

    def test_touching_windows_merge(self):
        s = FaultSchedule.build([(1, 0.0, 2.0), (1, 2.0, 4.0)])
        assert s.n_outages == 1
        assert s.outages[0].end == 4.0

    def test_distinct_machines_do_not_merge(self):
        s = FaultSchedule.build([(1, 0.0, 2.0), (2, 1.0, 3.0)])
        assert s.n_outages == 2

    def test_declaration_order_irrelevant(self):
        a = FaultSchedule.build([(2, 5.0, 6.0), (1, 0.0, 2.0)])
        b = FaultSchedule.build([(1, 0.0, 2.0), (2, 5.0, 6.0)])
        assert a == b

    def test_empty_schedule(self):
        s = FaultSchedule()
        assert not s
        assert s.n_outages == 0
        assert s.max_machine() == 0
        assert s.machines() == frozenset()
        assert s.total_downtime(100.0) == 0.0
        assert list(s.events()) == []


class TestQueries:
    def setup_method(self):
        self.s = FaultSchedule.build([(1, 2.0, 4.0), (3, 3.0, 10.0)])

    def test_down_at_half_open(self):
        assert self.s.down_at(1, 2.0)  # fails at start...
        assert self.s.down_at(1, 3.999)
        assert not self.s.down_at(1, 4.0)  # ...alive again at end
        assert not self.s.down_at(2, 3.0)

    def test_next_recovery(self):
        assert self.s.next_recovery(1, 2.5) == 4.0
        assert self.s.next_recovery(1, 4.0) is None
        assert self.s.next_recovery(2, 0.0) is None

    def test_downtime_clips_at_horizon(self):
        assert self.s.downtime(3, 5.0) == pytest.approx(2.0)
        assert self.s.downtime(3, 100.0) == pytest.approx(7.0)
        assert self.s.downtime(3, 1.0) == 0.0  # outage entirely after horizon

    def test_total_downtime(self):
        assert self.s.total_downtime(100.0) == pytest.approx(9.0)

    def test_events_order_up_before_down_at_equal_time(self):
        s = FaultSchedule.build([(1, 0.0, 5.0), (2, 5.0, 6.0)])
        events = list(s.events())
        assert events == [(0.0, "down", 1), (5.0, "up", 1), (5.0, "down", 2), (6.0, "up", 2)]


class TestJson:
    def test_round_trip(self):
        s = FaultSchedule.build([(1, 2.0, 4.0), (3, 3.0, 10.0)])
        assert FaultSchedule.from_json(s.to_json()) == s

    def test_byte_stable(self):
        a = FaultSchedule.build([(2, 5.0, 6.0), (1, 0.0, 2.0)])
        b = FaultSchedule.build([(1, 0.0, 2.0), (2, 5.0, 6.0)])
        assert a.to_json() == b.to_json()

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="not a repro-faults"):
            FaultSchedule.from_json(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="version"):
            FaultSchedule.from_json(
                json.dumps({"format": "repro-faults", "version": 99})
            )


class TestChaos:
    def test_deterministic_under_seed(self):
        a = chaos_schedule(5, 200.0, mtbf=30.0, mttr=5.0, seed=42)
        b = chaos_schedule(5, 200.0, mtbf=30.0, mttr=5.0, seed=42)
        assert a == b and a.to_json() == b.to_json()

    def test_seed_changes_schedule(self):
        a = chaos_schedule(5, 200.0, mtbf=30.0, mttr=5.0, seed=1)
        b = chaos_schedule(5, 200.0, mtbf=30.0, mttr=5.0, seed=2)
        assert a != b

    def test_windows_within_horizon_and_targets(self):
        s = chaos_schedule(6, 100.0, mtbf=10.0, mttr=2.0, seed=7, machines=[2, 4])
        assert s.machines() <= {2, 4}
        for o in s.outages:
            assert 0.0 <= o.start < o.end <= 100.0

    def test_availability_roughly_matches_ratio(self):
        # mtbf/(mtbf+mttr) = 0.8 expected availability; generous tolerance.
        horizon = 5000.0
        s = chaos_schedule(4, horizon, mtbf=20.0, mttr=5.0, seed=3)
        availability = 1.0 - s.total_downtime(horizon) / (4 * horizon)
        assert 0.7 < availability < 0.9

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(m=0, horizon=10.0, mtbf=1.0, mttr=1.0),
            dict(m=2, horizon=0.0, mtbf=1.0, mttr=1.0),
            dict(m=2, horizon=10.0, mtbf=0.0, mttr=1.0),
            dict(m=2, horizon=10.0, mtbf=1.0, mttr=-1.0),
            dict(m=2, horizon=10.0, mtbf=1.0, mttr=1.0, machines=[3]),
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            chaos_schedule(**kwargs)
