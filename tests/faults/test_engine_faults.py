"""Fault-injected Simulator: dispatch, policies, parking, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EFT, Instance, Task
from repro.faults import RESTART, RESUME, FaultSchedule, chaos_schedule
from repro.obs.sim import SimRecorder
from repro.simulation import Simulator, WorkloadSpec, generate_workload

from ..conftest import restricted_unit_instances


def simulate(inst, faults=None, policy=RESTART, obs=None):
    sim = Simulator(EFT(inst.m, tiebreak="min"), obs=obs, faults=faults, fault_policy=policy)
    sim.add_instance(inst)
    return sim.run(), sim


class TestValidation:
    def test_rejects_out_of_range_machine(self):
        faults = FaultSchedule.build([(9, 0.0, 1.0)])
        with pytest.raises(ValueError, match="machine 9"):
            Simulator(EFT(4, tiebreak="min"), faults=faults)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            Simulator(EFT(4, tiebreak="min"), fault_policy="teleport")


class TestRestartPolicy:
    def test_in_flight_task_restarts_elsewhere(self):
        # Task 0 runs on machine 1 from t=0; machine 1 fails at t=1 for
        # 2.5 units.  Under restart it loses its progress and re-runs on
        # machine 2 (the only alive candidate), completing at 1 + 2 = 3.
        inst = Instance.build(2, releases=[0.0], procs=2.0, machine_sets=[{1, 2}])
        faults = FaultSchedule.build([(1, 1.0, 3.5)])
        result, sim = simulate(inst, faults)
        assert result.n_completed == 1
        assert result.n_requeued == 1
        assert result.wasted_work == pytest.approx(1.0)
        assert sim.completions[0] == pytest.approx(3.0)
        assert sim.assigned_machine[0] == 2

    def test_queued_tasks_drain_to_alive_machines(self):
        inst = Instance.build(
            2,
            releases=[0.0, 0.0, 0.0],
            procs=1.0,
            machine_sets=[{1, 2}, {1, 2}, {1, 2}],
        )
        faults = FaultSchedule.build([(1, 0.5, 10.0)])
        result, sim = simulate(inst, faults)
        assert result.n_completed == 3
        # After the failure everything must have finished on machine 2.
        for tid, done in sim.completions.items():
            if done > 0.5:
                assert sim.assigned_machine[tid] == 2


class TestResumePolicy:
    def test_in_flight_task_resumes_with_residual(self):
        # 1 unit of work done before the failure at t=1; recovery at
        # t=3.5 continues the residual 1.0 → completion at 4.5.
        inst = Instance.build(1, releases=[0.0], procs=2.0, machine_sets=[{1}])
        faults = FaultSchedule.build([(1, 1.0, 3.5)])
        result, sim = simulate(inst, faults, policy=RESUME)
        assert result.n_completed == 1
        assert result.n_resumed == 1
        assert result.n_requeued == 0
        assert result.wasted_work == 0.0
        assert sim.completions[0] == pytest.approx(4.5)

    def test_resume_does_not_double_count_busy_time(self):
        inst = Instance.build(1, releases=[0.0], procs=2.0, machine_sets=[{1}])
        faults = FaultSchedule.build([(1, 1.0, 3.5)])
        result, sim = simulate(inst, faults, policy=RESUME)
        # busy time is exactly the processing requirement.
        assert sim.machines[1].busy_time == pytest.approx(2.0)
        assert result.utilization <= 1.0 + 1e-9


class TestParking:
    def test_task_parks_until_first_recovery(self):
        # Whole processing set {1, 2} down at release t=1; machine 2
        # recovers first (t=4) — the parked task must start exactly then.
        inst = Instance.build(
            2, releases=[1.0], procs=1.0, machine_sets=[{1, 2}]
        )
        faults = FaultSchedule.build([(1, 0.5, 6.0), (2, 0.5, 4.0)])
        result, sim = simulate(inst, faults)
        assert result.n_parked == 0  # unparked on recovery
        assert sim.starts[0] == pytest.approx(4.0)
        assert sim.assigned_machine[0] == 2

    def test_task_stays_parked_before_recovery(self):
        # Truncate the run mid-outage: the task is still parked.
        inst = Instance.build(1, releases=[0.0], procs=1.0, machine_sets=[{1}])
        faults = FaultSchedule.build([(1, 0.0, 100.0)])
        sim = Simulator(EFT(1, tiebreak="min"), faults=faults)
        sim.add_instance(inst)
        result = sim.run(until=50.0)
        assert result.n_parked == 1
        assert result.n_completed == 0
        assert 0 not in sim.assigned_machine

    def test_parked_task_completes_after_clipped_recovery(self):
        # The chaos/window model always recovers by the horizon; once it
        # does, the parked task runs to completion.
        inst = Instance.build(1, releases=[0.0], procs=1.0, machine_sets=[{1}])
        faults = FaultSchedule.build([(1, 0.0, 100.0)])
        result, sim = simulate(inst, faults)
        assert result.n_parked == 0
        assert result.n_completed == 1
        assert sim.starts[0] == pytest.approx(100.0)

    def test_release_on_partially_down_set_uses_alive_subset(self):
        inst = Instance.build(
            3, releases=[0.0], procs=1.0, machine_sets=[{1, 2, 3}]
        )
        faults = FaultSchedule.build([(1, 0.0, 5.0), (2, 0.0, 5.0)])
        result, sim = simulate(inst, faults)
        assert sim.assigned_machine[0] == 3
        assert sim.starts[0] == pytest.approx(0.0)


class TestStaleCompletions:
    def test_completion_of_displaced_task_is_invalidated(self):
        # Machine 1 fails mid-task and recovers before the original
        # completion instant; the stale COMPLETE (old epoch) must not
        # mark the task done early.
        inst = Instance.build(1, releases=[0.0], procs=4.0, machine_sets=[{1}])
        faults = FaultSchedule.build([(1, 1.0, 2.0)])
        result, sim = simulate(inst, faults, policy=RESTART)
        assert result.n_completed == 1
        # restarted at recovery t=2 on the same machine, full 4 units again
        assert sim.completions[0] == pytest.approx(6.0)
        assert result.wasted_work == pytest.approx(1.0)


class TestObserverHooks:
    def test_recorder_counters_match_result(self):
        spec = WorkloadSpec(m=4, n=60, lam=2.0, k=2, strategy="overlapping", case="uniform")
        inst = generate_workload(spec, rng=np.random.default_rng(5))
        faults = chaos_schedule(4, 40.0, mtbf=10.0, mttr=3.0, seed=5)
        recorder = SimRecorder()
        result, sim = simulate(inst, faults, obs=recorder)
        snap = recorder.registry.snapshot()
        counters = snap["counters"]
        assert counters["machine_failures"] == sum(1 for _, k, _ in faults.events() if k == "down")
        assert counters.get("tasks_requeued", 0) == result.n_requeued
        assert counters.get("tasks_parked", 0) >= result.n_parked
        assert counters.get("tasks_resumed", 0) == result.n_resumed
        assert counters["tasks_completed"] == result.n_completed

    def test_plain_observer_without_fault_hooks_still_works(self):
        class Minimal:
            events = []

            def on_release(self, sim, task):
                self.events.append("r")

            def on_start(self, sim, task, machine):
                self.events.append("s")

            def on_complete(self, sim, task, machine):
                self.events.append("c")

        inst = Instance.build(2, releases=[0.0, 0.0], procs=1.0, machine_sets=[{1, 2}, {1, 2}])
        faults = FaultSchedule.build([(1, 0.5, 2.0)])
        result, _ = simulate(inst, faults, obs=Minimal())
        assert result.n_completed == 2


@st.composite
def chaos_params(draw):
    return (
        draw(st.integers(0, 10_000)),  # chaos seed
        draw(st.floats(2.0, 20.0)),  # mtbf
        draw(st.floats(0.5, 5.0)),  # mttr
    )


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(inst=restricted_unit_instances(max_m=5, max_n=12), params=chaos_params(),
           policy=st.sampled_from([RESTART, RESUME]))
    def test_fault_invariants(self, inst, params, policy):
        seed, mtbf, mttr = params
        faults = chaos_schedule(inst.m, 30.0, mtbf=mtbf, mttr=mttr, seed=seed)
        result, sim = simulate(inst, faults, policy=policy)
        # No task ever starts on a DOWN machine.
        for tid, start in sim.starts.items():
            machine = sim.assigned_machine[tid]
            assert not faults.down_at(machine, start), (
                f"task {tid} started at {start} on down machine {machine}"
            )
        # Utilisation never exceeds one alive machine-second per second.
        assert result.utilization <= 1.0 + 1e-9
        # Every task is accounted for exactly once.
        assert result.n_completed + result.n_pending + result.n_parked == len(inst.tasks) or (
            # tasks in flight at truncation are neither completed nor pending
            result.n_completed + result.n_pending + result.n_parked <= len(inst.tasks)
        )
        # Completed tasks completed after (or at) their start.
        for tid, done in sim.completions.items():
            assert done >= sim.starts[tid]

    @settings(max_examples=20, deadline=None)
    @given(inst=restricted_unit_instances(max_m=5, max_n=12))
    def test_empty_schedule_equals_no_schedule(self, inst):
        bare, _ = simulate(inst, faults=None)
        empty, _ = simulate(inst, faults=FaultSchedule())
        assert bare.max_flow == empty.max_flow
        assert bare.mean_flow == empty.mean_flow
        assert bare.utilization == empty.utilization
        assert bare.schedule.same_placements(empty.schedule)
