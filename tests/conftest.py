"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core import Instance, Task


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_instance(m, releases, procs=1.0, machine_sets=None) -> Instance:
    """Shorthand instance builder used across test modules."""
    return Instance.build(m, releases=releases, procs=procs, machine_sets=machine_sets)


# -- hypothesis strategies ----------------------------------------------------

@st.composite
def unrestricted_instances(
    draw,
    max_m: int = 6,
    max_n: int = 25,
    unit: bool = False,
    integral_releases: bool = False,
):
    """Random instances of ``P | online-r_i | Fmax`` (no restrictions)."""
    m = draw(st.integers(1, max_m))
    n = draw(st.integers(1, max_n))
    if integral_releases:
        releases = draw(
            st.lists(st.integers(0, 12), min_size=n, max_size=n)
        )
        releases = [float(r) for r in releases]
    else:
        releases = draw(
            st.lists(
                st.floats(0, 20, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        )
    if unit:
        procs = [1.0] * n
    else:
        procs = draw(
            st.lists(
                st.floats(0.1, 5, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        )
    tasks = tuple(
        Task(tid=i, release=releases[i], proc=procs[i]) for i in range(n)
    )
    return Instance(m=m, tasks=tasks)


@st.composite
def restricted_unit_instances(draw, max_m: int = 6, max_n: int = 18):
    """Random unit instances with integral releases and arbitrary
    non-empty processing sets (exact OPT computable)."""
    m = draw(st.integers(2, max_m))
    n = draw(st.integers(1, max_n))
    tasks = []
    for i in range(n):
        release = float(draw(st.integers(0, 8)))
        subset = draw(
            st.sets(st.integers(1, m), min_size=1, max_size=m)
        )
        tasks.append(Task(tid=i, release=release, proc=1.0, machines=frozenset(subset)))
    return Instance(m=m, tasks=tuple(tasks))
