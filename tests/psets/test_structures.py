"""Unit and property tests for structure predicates (Figure 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.psets import (
    REDUCTION_GRAPH,
    classify_family,
    is_disjoint_family,
    is_inclusive_family,
    is_interval_family,
    is_nested_family,
    nested_interval_order,
    random_disjoint_family,
    random_inclusive_family,
    random_interval_family,
    random_nested_family,
    specializes,
)


class TestPredicates:
    def test_disjoint(self):
        assert is_disjoint_family([{1, 2}, {3, 4}, {1, 2}])
        assert not is_disjoint_family([{1, 2}, {2, 3}])

    def test_inclusive(self):
        assert is_inclusive_family([{1}, {1, 2}, {1, 2, 3}])
        assert not is_inclusive_family([{1, 2}, {2, 3}])
        assert not is_inclusive_family([{1}, {2}])

    def test_nested(self):
        assert is_nested_family([{1, 2, 3, 4}, {1, 2}, {3, 4}, {3}])
        assert not is_nested_family([{1, 2}, {2, 3}])

    def test_interval(self):
        assert is_interval_family([{1, 2}, {3, 4, 5}], m=5)
        assert not is_interval_family([{1, 3}], m=5)

    def test_interval_ring(self):
        assert is_interval_family([{5, 6, 1}], m=6, allow_ring=True)
        assert not is_interval_family([{5, 6, 1}], m=6, allow_ring=False)

    def test_interval_reorder_nested(self):
        """A nested family becomes intervals after reordering (paper §3)."""
        family = [{1, 5}, {1, 5, 3}, {2, 4}]
        assert is_nested_family(family)
        assert is_interval_family(family, m=5, allow_reorder=True)

    def test_interval_reorder_bruteforce(self):
        # {1,3} is an interval after swapping machines 2 and 3
        assert is_interval_family([{1, 3}, {2}], m=3, allow_reorder=True)

    def test_interval_reorder_impossible(self):
        # Three pairwise-crossing pairs over 4 machines have no
        # consecutive-ones ordering.
        family = [{1, 2}, {2, 3}, {3, 1}, {1, 4}, {2, 4}, {3, 4}]
        assert not is_interval_family(family, m=4, allow_reorder=True)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            is_nested_family([set()])


class TestClassify:
    def test_priority_order(self):
        assert classify_family([{1, 2}, {1, 2}], m=2) == "inclusive"
        assert classify_family([{1}, {2}], m=2) == "disjoint"
        assert classify_family([{1, 2}, {1}, {3}], m=3) == "nested"
        assert classify_family([{1, 2}, {2, 3}], m=3) == "interval"
        # {1,3} is not an interval on 4 machines (its complement {2,4}
        # is not contiguous either), and the family is neither nested
        # nor disjoint nor inclusive.
        assert classify_family([{1, 3}, {3, 4}, {1, 2}], m=4) == "general"

    def test_single_set_is_inclusive(self):
        assert classify_family([{2, 3}], m=4) == "inclusive"


class TestReductionGraph:
    def test_figure1_edges(self):
        assert specializes("inclusive", "nested")
        assert specializes("disjoint", "nested")
        assert specializes("nested", "interval")
        assert specializes("interval", "general")

    def test_transitivity(self):
        assert specializes("inclusive", "general")
        assert specializes("disjoint", "interval")

    def test_non_edges(self):
        assert not specializes("nested", "inclusive")
        assert not specializes("inclusive", "disjoint")
        assert not specializes("disjoint", "inclusive")

    def test_reflexive(self):
        for s in REDUCTION_GRAPH:
            assert specializes(s, s)

    def test_unknown(self):
        with pytest.raises(ValueError):
            specializes("inclusive", "bogus")


class TestNestedIntervalOrder:
    def test_witness_makes_contiguous(self):
        family = [{1, 5}, {1, 5, 3}, {2, 4}]
        order = nested_interval_order(family, m=5)
        assert sorted(order) == [1, 2, 3, 4, 5]
        position = {machine: idx for idx, machine in enumerate(order)}
        for s in family:
            positions = sorted(position[j] for j in s)
            assert positions == list(range(positions[0], positions[0] + len(s)))

    def test_rejects_non_nested(self):
        with pytest.raises(ValueError, match="not nested"):
            nested_interval_order([{1, 2}, {2, 3}], m=3)

    @given(st.integers(2, 8), st.integers(1, 10), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_witness_on_random_nested(self, m, n, seed):
        family = random_nested_family(n, m, rng=seed)
        order = nested_interval_order(family, m)
        position = {machine: idx for idx, machine in enumerate(order)}
        for s in family:
            positions = sorted(position[j] for j in s)
            assert positions == list(range(positions[0], positions[0] + len(s)))


class TestGeneratorsProduceClaimedStructure:
    @given(st.integers(2, 10), st.integers(1, 12), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_nested_generator(self, m, n, seed):
        assert is_nested_family(random_nested_family(n, m, rng=seed))

    @given(st.integers(2, 10), st.integers(1, 12), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_inclusive_generator(self, m, n, seed):
        assert is_inclusive_family(random_inclusive_family(n, m, rng=seed))

    @given(st.integers(2, 10), st.integers(1, 12), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_disjoint_generator(self, m, n, seed):
        assert is_disjoint_family(random_disjoint_family(n, m, rng=seed))

    @given(st.integers(2, 10), st.integers(1, 12), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_interval_generator(self, m, n, seed):
        fam = random_interval_family(n, m, rng=seed)
        assert is_interval_family(fam, m, allow_ring=False)
