"""Unit tests for replication strategies (Section 7.2, Figure 9)."""

import numpy as np
import pytest

from repro.core import Instance
from repro.psets import (
    DisjointIntervals,
    NoReplication,
    OverlappingIntervals,
    classify_family,
    get_strategy,
    replicate_instance,
)


class TestOverlapping:
    def test_figure9_example(self):
        """Figure 9: a task on M3 with k=3 gets M'={M3, M4, M5}."""
        strat = OverlappingIntervals(6, 3)
        assert strat.replicas(3) == {3, 4, 5}

    def test_wraps_around_ring(self):
        strat = OverlappingIntervals(6, 3)
        assert strat.replicas(5) == {5, 6, 1}
        assert strat.replicas(6) == {6, 1, 2}

    def test_m_distinct_sets(self):
        strat = OverlappingIntervals(6, 3)
        assert len(set(strat.all_sets())) == 6

    def test_every_set_size_k(self):
        strat = OverlappingIntervals(7, 4)
        assert all(len(s) == 4 for s in strat.all_sets())

    def test_each_machine_in_k_sets(self):
        strat = OverlappingIntervals(6, 3)
        counts = {j: 0 for j in range(1, 7)}
        for s in strat.all_sets():
            for j in s:
                counts[j] += 1
        assert all(c == 3 for c in counts.values())


class TestDisjoint:
    def test_figure9_example(self):
        """Figure 9: a task on M3 with k=3 disjoint gets {M1, M2, M3}."""
        strat = DisjointIntervals(6, 3)
        assert strat.replicas(3) == {1, 2, 3}
        assert strat.replicas(4) == {4, 5, 6}

    def test_groups_partition(self):
        strat = DisjointIntervals(7, 3)
        groups = strat.groups()
        assert [len(g) for g in groups] == [3, 3, 1]
        union = set().union(*groups)
        assert union == set(range(1, 8))

    def test_family_is_disjoint_structure(self):
        strat = DisjointIntervals(9, 3)
        from repro.psets import is_disjoint_family

        assert is_disjoint_family(strat.all_sets())
        assert classify_family(strat.all_sets(), 9) in ("disjoint", "inclusive")

    def test_same_group_same_set(self):
        strat = DisjointIntervals(6, 3)
        assert strat.replicas(1) == strat.replicas(2) == strat.replicas(3)


class TestNoReplication:
    def test_singleton(self):
        strat = NoReplication(4)
        assert strat.replicas(3) == {3}
        assert strat.k == 1


class TestTransferMatrix:
    def test_overlapping_matrix(self):
        strat = OverlappingIntervals(4, 2)
        a = strat.transfer_matrix()
        # machine i serves home j iff i in {j, j+1 mod m}
        expected = np.zeros((4, 4), dtype=bool)
        for j in range(1, 5):
            for i in strat.replicas(j):
                expected[i - 1, j - 1] = True
        assert (a == expected).all()
        assert a.sum() == 8  # m*k entries

    def test_disjoint_matrix_block_diagonal(self):
        strat = DisjointIntervals(4, 2)
        a = strat.transfer_matrix()
        assert a[:2, :2].all() and a[2:, 2:].all()
        assert not a[:2, 2:].any() and not a[2:, :2].any()


class TestGetStrategy:
    def test_by_name(self):
        assert isinstance(get_strategy("overlapping", 6, 3), OverlappingIntervals)
        assert isinstance(get_strategy("disjoint", 6, 3), DisjointIntervals)
        assert isinstance(get_strategy("none", 6, 3), NoReplication)

    def test_passthrough(self):
        s = OverlappingIntervals(6, 3)
        assert get_strategy(s, 6, 3) is s

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown replication"):
            get_strategy("bogus", 6, 3)

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k="):
            OverlappingIntervals(6, 7)
        with pytest.raises(ValueError, match="k="):
            DisjointIntervals(6, 0)


class TestReplicateInstance:
    def test_from_singleton_homes(self):
        inst = Instance.build(
            6, releases=[0, 1], machine_sets=[{3}, {5}]
        )
        out = replicate_instance(inst, "overlapping", 3)
        assert out[0].machines == {3, 4, 5}
        assert out[1].machines == {5, 6, 1}

    def test_explicit_homes(self):
        inst = Instance.build(6, releases=[0, 1])
        out = replicate_instance(inst, "disjoint", 3, homes=[1, 6])
        assert out[0].machines == {1, 2, 3}
        assert out[1].machines == {4, 5, 6}

    def test_requires_singleton_or_homes(self):
        inst = Instance.build(6, releases=[0], machine_sets=[{1, 2}])
        with pytest.raises(ValueError, match="homes"):
            replicate_instance(inst, "overlapping", 3)

    def test_preserves_everything_else(self):
        inst = Instance.build(6, releases=[0.5], procs=[2.5], machine_sets=[{2}])
        out = replicate_instance(inst, "overlapping", 2)
        assert out[0].release == 0.5
        assert out[0].proc == 2.5
        assert out[0].tid == inst[0].tid
