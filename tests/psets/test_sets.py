"""Unit tests for interval primitives."""

import pytest

from repro.psets import (
    interval,
    interval_bounds,
    is_circular_interval,
    is_contiguous,
    ring_interval,
)


class TestInterval:
    def test_basic(self):
        assert interval(2, 4) == {2, 3, 4}

    def test_singleton(self):
        assert interval(3, 3) == {3}

    def test_invalid(self):
        with pytest.raises(ValueError):
            interval(3, 2)
        with pytest.raises(ValueError):
            interval(0, 2)
        with pytest.raises(ValueError):
            interval(1, 5, m=4)


class TestRingInterval:
    def test_no_wrap(self):
        assert ring_interval(2, 3, 6) == {2, 3, 4}

    def test_wraps(self):
        assert ring_interval(5, 3, 6) == {5, 6, 1}

    def test_full_ring(self):
        assert ring_interval(4, 6, 6) == {1, 2, 3, 4, 5, 6}

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            ring_interval(0, 2, 6)
        with pytest.raises(ValueError):
            ring_interval(1, 7, 6)

    def test_matches_paper_fig9(self):
        """Figure 9: data homed on M3 with k=3 overlapping replicates
        to {M3, M4, M5}."""
        assert ring_interval(3, 3, 6) == {3, 4, 5}


class TestPredicates:
    def test_contiguous(self):
        assert is_contiguous({2, 3, 4})
        assert not is_contiguous({1, 3})
        assert not is_contiguous(set())

    def test_circular(self):
        assert is_circular_interval({5, 6, 1}, 6)
        assert is_circular_interval({2, 3}, 6)
        assert not is_circular_interval({1, 3}, 6)

    def test_circular_bounds_check(self):
        with pytest.raises(ValueError):
            is_circular_interval({7}, 6)

    def test_interval_bounds(self):
        assert interval_bounds({2, 3, 4}) == (2, 4)
        with pytest.raises(ValueError):
            interval_bounds({1, 3})
