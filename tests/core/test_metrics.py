"""Unit tests for schedule metrics."""

import numpy as np
import pytest

from repro.core import (
    Instance,
    Schedule,
    eft_schedule,
    flow_percentiles,
    summarize,
    waiting_profile,
)


def two_machine_schedule() -> Schedule:
    inst = Instance.build(2, releases=[0, 0, 1], procs=[2, 1, 2])
    return Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (2, 1.0)})


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize(two_machine_schedule())
        assert stats.n == 3
        assert stats.m == 2
        assert stats.max_flow == 2.0
        assert stats.makespan == 3.0
        assert stats.total_work == 5.0
        assert stats.avg_utilization == pytest.approx(5.0 / 6.0)
        assert stats.max_machine_load == 3.0
        assert stats.min_machine_load == 2.0

    def test_as_dict_roundtrip(self):
        stats = summarize(two_machine_schedule())
        d = stats.as_dict()
        assert d["max_flow"] == stats.max_flow
        assert set(d) >= {"p95_flow", "p99_flow", "max_stretch"}

    def test_percentiles_ordered(self):
        inst = Instance.build(1, releases=[0] * 10, procs=1.0)
        sched = eft_schedule(inst)
        stats = summarize(sched)
        assert stats.p50_flow <= stats.p95_flow <= stats.p99_flow <= stats.max_flow


class TestFlowPercentiles:
    def test_max_is_100th(self):
        sched = two_machine_schedule()
        pct = flow_percentiles(sched)
        assert pct[100] == sched.max_flow

    def test_monotone(self):
        sched = two_machine_schedule()
        pct = flow_percentiles(sched, qs=(10, 50, 90))
        assert pct[10] <= pct[50] <= pct[90]


class TestWaitingProfile:
    def test_profile_values(self):
        sched = two_machine_schedule()
        # At t=1: M1 has 1 unit left of task 0; M2 has task 2 ending at 3.
        profile = waiting_profile(sched, 1.0)
        assert np.allclose(profile, [1.0, 2.0])

    def test_future_time_empty(self):
        sched = two_machine_schedule()
        assert np.allclose(waiting_profile(sched, 100.0), [0.0, 0.0])

    def test_ignores_unreleased(self):
        sched = two_machine_schedule()
        profile = waiting_profile(sched, 0.5)
        # task 2 (released at 1) not counted at t=0.5
        assert np.allclose(profile, [1.5, 0.5])
