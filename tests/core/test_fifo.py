"""Unit tests for FIFO (Algorithm 1) and the restricted variant."""

import pytest
from hypothesis import given, settings

from repro.core import FIFO, Instance, RestrictedFIFO, fifo_schedule
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestFIFO:
    def test_single_machine_is_release_order(self):
        inst = Instance.build(1, releases=[0, 0, 1], procs=[2, 1, 1])
        sched = fifo_schedule(inst)
        assert sched.start_of(0) == 0.0
        assert sched.start_of(1) == 2.0
        assert sched.start_of(2) == 3.0

    def test_pulls_when_machine_frees(self):
        inst = Instance.build(2, releases=[0, 0, 0], procs=[3, 1, 1])
        sched = fifo_schedule(inst, tiebreak="min")
        # task 0 -> M1, task 1 -> M2, task 2 waits for M2 (frees at 1)
        assert sched.machine_of(2) == 2
        assert sched.start_of(2) == 1.0

    def test_idle_gap_then_release(self):
        inst = Instance.build(2, releases=[0, 5], procs=[1, 1])
        sched = fifo_schedule(inst)
        assert sched.start_of(1) == 5.0

    def test_rejects_restricted_instances(self):
        inst = Instance.build(2, releases=[0], machine_sets=[{1}])
        with pytest.raises(ValueError, match="restriction"):
            FIFO(2).run(inst)

    def test_m_mismatch_rejected(self):
        inst = Instance.build(2, releases=[0])
        with pytest.raises(ValueError, match="m="):
            FIFO(3).run(inst)

    @given(unrestricted_instances())
    @settings(max_examples=60, deadline=None)
    def test_valid_on_random(self, inst):
        fifo_schedule(inst, tiebreak="min").validate()

    @given(unrestricted_instances())
    @settings(max_examples=40, deadline=None)
    def test_fifo_order_per_start(self, inst):
        """FIFO starts tasks in release order globally: sorting by
        (start, release) must never show an inversion where a
        later-released task starts strictly before an earlier one."""
        sched = fifo_schedule(inst, tiebreak="min")
        starts = {t.tid: sched.start_of(t.tid) for t in inst}
        for a in inst:
            for b in inst:
                if a.release < b.release:
                    assert starts[a.tid] <= starts[b.tid] + 1e-9


class TestRestrictedFIFO:
    def test_oldest_compatible_first(self):
        inst = Instance.build(
            2,
            releases=[0, 0, 0],
            procs=[5, 1, 1],
            machine_sets=[{1}, {1}, {2}],
        )
        sched = RestrictedFIFO(2).run(inst)
        # task 1 must wait for machine 1 even though machine 2 idles
        assert sched.machine_of(1) == 1
        assert sched.start_of(1) == 5.0
        assert sched.start_of(2) == 0.0

    def test_skips_head_for_compatible_machine(self):
        """A machine incompatible with the queue head serves the next
        compatible task instead of idling."""
        inst = Instance.build(
            2,
            releases=[0, 0, 0],
            procs=[2, 2, 1],
            machine_sets=[{1}, {1}, {2}],
        )
        sched = RestrictedFIFO(2).run(inst)
        assert sched.start_of(2) == 0.0  # not blocked behind task 1

    def test_unrestricted_equals_fifo(self):
        inst = Instance.build(3, releases=[0, 0, 1, 2, 2], procs=[2, 1, 3, 1, 1])
        a = RestrictedFIFO(3).run(inst)
        b = fifo_schedule(inst)
        assert a.same_placements(b)

    @given(restricted_unit_instances())
    @settings(max_examples=60, deadline=None)
    def test_valid_on_random_restricted(self, inst):
        RestrictedFIFO(inst.m).run(inst).validate()
