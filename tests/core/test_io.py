"""Tests for schedule/trace serialisation."""

import json

import pytest
from hypothesis import given, settings

from repro.core import eft_schedule
from repro.io import (
    experiment_record,
    load_experiment_record,
    schedule_from_json,
    schedule_to_csv,
    schedule_to_json,
)
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestScheduleJson:
    @given(restricted_unit_instances())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, inst):
        sched = eft_schedule(inst, tiebreak="min")
        back = schedule_from_json(schedule_to_json(sched))
        assert back.same_placements(sched)
        assert back.max_flow == sched.max_flow

    @given(unrestricted_instances(max_n=10))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_general(self, inst):
        sched = eft_schedule(inst, tiebreak="max")
        back = schedule_from_json(schedule_to_json(sched))
        assert back.same_placements(sched)

    def test_deserialisation_validates(self):
        from repro.core import Instance

        inst = Instance.build(2, releases=[0, 0], procs=1.0)
        sched = eft_schedule(inst)
        payload = json.loads(schedule_to_json(sched))
        payload["placements"]["0"] = [1, -5.0]  # start before release
        with pytest.raises(Exception):
            schedule_from_json(json.dumps(payload))


class TestCsv:
    def test_header_and_rows(self):
        from repro.core import Instance

        inst = Instance.build(2, releases=[0, 1], procs=[2, 1])
        csv_text = schedule_to_csv(eft_schedule(inst))
        lines = csv_text.strip().splitlines()
        assert lines[0] == "tid,machine,release,start,completion,flow,proc"
        assert len(lines) == 3

    def test_flow_column_consistent(self):
        from repro.core import Instance

        inst = Instance.build(1, releases=[0, 0], procs=1.0)
        sched = eft_schedule(inst)
        rows = schedule_to_csv(sched).strip().splitlines()[1:]
        for row in rows:
            tid, machine, release, start, completion, flow, proc = row.split(",")
            assert float(flow) == pytest.approx(float(completion) - float(release))


class TestExperimentRecord:
    def test_roundtrip_with_provenance(self):
        from repro.core import Instance

        inst = Instance.build(3, releases=[0, 0, 1], procs=1.0)
        sched = eft_schedule(inst, tiebreak="min")
        record = experiment_record(sched, algorithm="EFT-min", seed=7, extra={"case": "demo"})
        back, meta = load_experiment_record(record)
        assert back.same_placements(sched)
        assert meta["algorithm"] == "EFT-min"
        assert meta["seed"] == 7
        assert meta["extra"] == {"case": "demo"}
        assert meta["metrics"]["max_flow"] == sched.max_flow

    def test_corruption_detected(self):
        from repro.core import Instance

        inst = Instance.build(2, releases=[0, 0], procs=1.0)
        record = json.loads(experiment_record(eft_schedule(inst), algorithm="EFT"))
        record["metrics"]["max_flow"] = 42.0
        with pytest.raises(ValueError, match="does not match"):
            load_experiment_record(json.dumps(record))

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown record format"):
            load_experiment_record(json.dumps({"format": "v0"}))
