"""Proposition 1: FIFO and EFT produce identical schedules on
``P | online-r_i | Fmax`` when sharing the tie-break policy.

The two schedulers are independent implementations (push/analytic vs
pull/event-driven), so this is a genuine cross-check of the paper's
equivalence proof — including the random tie-break, provided both draw
from identically seeded generators.
"""

import numpy as np
from hypothesis import given, settings

from repro.core import EFT, FIFO, Instance, eft_schedule, fifo_schedule
from tests.conftest import unrestricted_instances


@given(unrestricted_instances())
@settings(max_examples=120, deadline=None)
def test_fifo_equals_eft_min(inst):
    assert eft_schedule(inst, tiebreak="min").same_placements(
        fifo_schedule(inst, tiebreak="min")
    )


@given(unrestricted_instances())
@settings(max_examples=60, deadline=None)
def test_fifo_equals_eft_max(inst):
    assert eft_schedule(inst, tiebreak="max").same_placements(
        fifo_schedule(inst, tiebreak="max")
    )


@given(unrestricted_instances(unit=True, integral_releases=True))
@settings(max_examples=60, deadline=None)
def test_fifo_equals_eft_unit_tasks(inst):
    """Unit tasks maximise simultaneous completions (hence ties) —
    the hardest case for the equivalence."""
    assert eft_schedule(inst, tiebreak="min").same_placements(
        fifo_schedule(inst, tiebreak="min")
    )


@given(unrestricted_instances())
@settings(max_examples=40, deadline=None)
def test_fifo_equals_eft_random_tiebreak(inst):
    """With identically seeded random tie-breaks the decision sequences
    align one-to-one, so the schedules must still match."""
    a = EFT(inst.m, tiebreak="rand", rng=99).run(inst)
    b = FIFO(inst.m, tiebreak="rand", rng=99).run(inst)
    assert a.same_placements(b)


@given(unrestricted_instances())
@settings(max_examples=60, deadline=None)
def test_equal_objectives_follow(inst):
    """Corollary of Proposition 1: identical Fmax (and every flow)."""
    a = eft_schedule(inst, tiebreak="min")
    b = fifo_schedule(inst, tiebreak="min")
    assert a.max_flow == b.max_flow
    assert np.allclose(a.flows(), b.flows())


def test_divergence_without_shared_tiebreak():
    """Sanity: with different tie-breaks the schedules may differ —
    the equivalence really does hinge on the shared policy."""
    inst = Instance.build(2, releases=[0.0, 0.0], procs=[1.0, 2.0])
    a = eft_schedule(inst, tiebreak="min")
    b = fifo_schedule(inst, tiebreak="max")
    assert not a.same_placements(b)
