"""Unit tests for the ASCII Gantt renderer."""

from repro.core import Instance, eft_schedule, render_gantt, render_profile


class TestGantt:
    def test_contains_machine_rows(self):
        inst = Instance.build(3, releases=[0, 0, 1], procs=1.0)
        out = render_gantt(eft_schedule(inst))
        assert "M1" in out and "M3" in out
        assert "Fmax" in out

    def test_empty_schedule(self):
        inst = Instance(m=2, tasks=())
        from repro.core import Schedule

        out = render_gantt(Schedule(inst, {}))
        assert "empty" in out

    def test_width_truncation(self):
        inst = Instance.build(1, releases=[0], procs=500.0)
        out = render_gantt(eft_schedule(inst), width=20)
        row = [l for l in out.splitlines() if l.startswith("M1")][0]
        assert len(row) < 40

    def test_show_ids_toggle(self):
        inst = Instance.build(1, releases=[0], procs=2.0)
        out = render_gantt(eft_schedule(inst), show_ids=False)
        assert "#" in out

    def test_busy_cells_marked(self):
        inst = Instance.build(2, releases=[0], procs=3.0)
        out = render_gantt(eft_schedule(inst, tiebreak="min"))
        m1 = [l for l in out.splitlines() if l.startswith("M1")][0]
        m2 = [l for l in out.splitlines() if l.startswith("M2")][0]
        assert "0" in m1.split()[1]
        assert set(m2.split()[1]) == {"."}


class TestProfile:
    def test_bars_scale_with_values(self):
        out = render_profile([3, 1, 0])
        lines = out.splitlines()
        assert lines[0].count("█") == 3
        assert lines[1].count("█") == 1
        assert lines[2].count("█") == 0

    def test_stable_marker(self):
        out = render_profile([1, 0], stable=[3, 2])
        assert "|" in out
