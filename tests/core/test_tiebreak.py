"""Unit tests for tie-break policies."""

import numpy as np
import pytest

from repro.core import (
    FunctionTieBreak,
    LeastLoadedFirst,
    MaxIndex,
    MinIndex,
    RandomChoice,
    get_tiebreak,
)

COMPLETIONS = {1: 3.0, 2: 1.0, 3: 1.0, 4: 0.0}


class TestMinMax:
    def test_min_picks_smallest(self):
        assert MinIndex()([3, 1, 2], COMPLETIONS) == 1

    def test_max_picks_largest(self):
        assert MaxIndex()([3, 1, 2], COMPLETIONS) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MinIndex()([], COMPLETIONS)
        with pytest.raises(ValueError):
            MaxIndex()([], COMPLETIONS)


class TestRandom:
    def test_all_candidates_reachable(self):
        """Theorem 9's condition: every candidate has positive
        probability."""
        policy = RandomChoice(rng=0)
        seen = {policy([1, 2, 3], COMPLETIONS) for _ in range(200)}
        assert seen == {1, 2, 3}

    def test_deterministic_given_seed(self):
        a = [RandomChoice(rng=7)([1, 2, 3, 4], COMPLETIONS) for _ in range(10)]
        b = [RandomChoice(rng=7)([1, 2, 3, 4], COMPLETIONS) for _ in range(10)]
        assert a == b

    def test_singleton(self):
        assert RandomChoice(rng=0)([5], COMPLETIONS) == 5

    def test_accepts_generator(self):
        gen = np.random.default_rng(3)
        assert RandomChoice(rng=gen)([1, 2], COMPLETIONS) in {1, 2}


class TestLeastLoaded:
    def test_prefers_smallest_completion(self):
        assert LeastLoadedFirst()([1, 2, 4], COMPLETIONS) == 4

    def test_ties_by_index(self):
        assert LeastLoadedFirst()([2, 3], COMPLETIONS) == 2


class TestFunctionTieBreak:
    def test_wraps_callable(self):
        policy = FunctionTieBreak(lambda cands, comps: sorted(cands)[-1], name="last")
        assert policy([1, 2, 3], COMPLETIONS) == 3

    def test_rejects_non_candidate(self):
        policy = FunctionTieBreak(lambda cands, comps: 99)
        with pytest.raises(ValueError, match="not a candidate"):
            policy([1, 2], COMPLETIONS)


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [("min", MinIndex), ("max", MaxIndex), ("least_loaded", LeastLoadedFirst)])
    def test_lookup(self, name, cls):
        assert isinstance(get_tiebreak(name), cls)

    def test_rand_lookup_threads_rng(self):
        p = get_tiebreak("rand", rng=11)
        assert isinstance(p, RandomChoice)

    def test_passthrough(self):
        p = MinIndex()
        assert get_tiebreak(p) is p

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown tie-break"):
            get_tiebreak("bogus")
