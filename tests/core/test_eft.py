"""Unit tests for the EFT scheduler (Algorithm 2, Equations 1-2)."""

import pytest
from hypothesis import given, settings

from repro.core import EFT, Instance, Task, eft_schedule
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestTieSet:
    def test_all_idle_tie(self):
        eft = EFT(3)
        task = Task(tid=0, release=0, proc=1)
        assert eft.tie_set(task) == {1, 2, 3}

    def test_restricted_tie(self):
        eft = EFT(3)
        task = Task(tid=0, release=0, proc=1, machines=frozenset({2, 3}))
        assert eft.tie_set(task) == {2, 3}

    def test_busy_machines_excluded(self):
        eft = EFT(3)
        eft.submit(Task(tid=0, release=0, proc=5))  # goes to machine 1
        task = Task(tid=1, release=0, proc=1)
        assert eft.tie_set(task) == {2, 3}

    def test_all_busy_min_completion_wins(self):
        eft = EFT(2)
        eft.submit(Task(tid=0, release=0, proc=3))
        eft.submit(Task(tid=1, release=0, proc=1))
        # machine 1 busy to 3, machine 2 busy to 1; next task ties on {2}
        task = Task(tid=2, release=0, proc=1)
        assert eft.tie_set(task) == {2}

    def test_release_after_idle_widens_tie(self):
        eft = EFT(2)
        eft.submit(Task(tid=0, release=0, proc=1))
        eft.submit(Task(tid=1, release=0, proc=2))
        # at time 3 both machines are free again: full tie
        task = Task(tid=2, release=3, proc=1)
        assert eft.tie_set(task) == {1, 2}


class TestDispatch:
    def test_start_time_max_of_release_and_completion(self):
        eft = EFT(1)
        eft.submit(Task(tid=0, release=0, proc=2))
        rec = eft.submit(Task(tid=1, release=1, proc=1))
        assert rec.start == 2.0  # waits for machine
        rec2 = eft.submit(Task(tid=2, release=10, proc=1))
        assert rec2.start == 10.0  # waits for release

    def test_out_of_order_submission_rejected(self):
        eft = EFT(2)
        eft.submit(Task(tid=0, release=5, proc=1))
        with pytest.raises(ValueError, match="release order"):
            eft.submit(Task(tid=1, release=3, proc=1))

    def test_min_vs_max_tiebreak(self):
        inst = Instance.build(3, releases=[0], procs=1.0)
        assert eft_schedule(inst, tiebreak="min").machine_of(0) == 1
        assert eft_schedule(inst, tiebreak="max").machine_of(0) == 3

    def test_respects_processing_set(self):
        inst = Instance.build(3, releases=[0, 0], machine_sets=[{3}, {3}])
        sched = eft_schedule(inst, tiebreak="min")
        assert sched.machine_of(0) == 3
        assert sched.machine_of(1) == 3
        assert sched.start_of(1) == 1.0

    def test_immediate_dispatch_property(self):
        """Every task is allocated at its release (the scheduler never
        defers a decision)."""
        inst = Instance.build(2, releases=[0, 0, 0, 1], procs=2.0)
        eft = EFT(2)
        eft.run(inst)
        assert eft.n_dispatched == 4

    def test_waiting_work(self):
        eft = EFT(2)
        eft.submit(Task(tid=0, release=0, proc=3))
        w = eft.waiting_work(1.0)
        assert w[1] == 2.0 and w[2] == 0.0


class TestScheduleProperties:
    @given(unrestricted_instances())
    @settings(max_examples=60, deadline=None)
    def test_valid_on_random_unrestricted(self, inst):
        sched = eft_schedule(inst, tiebreak="min")
        sched.validate()

    @given(restricted_unit_instances())
    @settings(max_examples=60, deadline=None)
    def test_valid_on_random_restricted(self, inst):
        sched = eft_schedule(inst, tiebreak="min")
        sched.validate()

    @given(restricted_unit_instances())
    @settings(max_examples=40, deadline=None)
    def test_max_tiebreak_also_valid(self, inst):
        eft_schedule(inst, tiebreak="max").validate()

    @given(restricted_unit_instances())
    @settings(max_examples=40, deadline=None)
    def test_rand_tiebreak_valid_and_seed_deterministic(self, inst):
        a = eft_schedule(inst, tiebreak="rand", rng=5)
        b = eft_schedule(inst, tiebreak="rand", rng=5)
        a.validate()
        assert a.same_placements(b)

    @given(unrestricted_instances(unit=True))
    @settings(max_examples=40, deadline=None)
    def test_work_conservation(self, inst):
        """No machine idles while a compatible task waits: every task
        starts at its release or immediately after another task on the
        same machine (no inserted idle)."""
        sched = eft_schedule(inst, tiebreak="min")
        for j in range(1, inst.m + 1):
            run = sched.on_machine(j)
            for prev, nxt in zip(run, run[1:]):
                assert nxt.start == pytest.approx(
                    max(nxt.task.release, prev.completion)
                )
