"""Additional metric edge cases."""

import numpy as np
import pytest

from repro.core import Instance, Schedule, eft_schedule, summarize


class TestBusyFraction:
    def test_full_utilisation(self):
        inst = Instance.build(2, releases=[0, 0], procs=[2.0, 2.0])
        sched = eft_schedule(inst)
        assert np.allclose(sched.machine_busy_fraction(), [1.0, 1.0])

    def test_horizon_override(self):
        inst = Instance.build(1, releases=[0], procs=[1.0])
        sched = eft_schedule(inst)
        assert sched.machine_busy_fraction(horizon=4.0)[0] == pytest.approx(0.25)

    def test_zero_horizon(self):
        sched = Schedule(Instance(m=2, tasks=()), {})
        assert np.allclose(sched.machine_busy_fraction(), [0.0, 0.0])


class TestEmptySchedule:
    def test_summary_of_empty(self):
        sched = Schedule(Instance(m=3, tasks=()), {})
        stats = summarize(sched)
        assert stats.n == 0
        assert stats.max_flow == 0.0
        assert stats.avg_utilization == 0.0

    def test_objectives_of_empty(self):
        sched = Schedule(Instance(m=1, tasks=()), {})
        assert sched.max_flow == 0.0
        assert sched.mean_flow == 0.0
        assert sched.makespan == 0.0
        assert sched.max_stretch == 0.0


class TestStretch:
    def test_stretch_vs_flow(self):
        """With non-unit tasks, stretch differs from flow: a waiting
        short task has a huge stretch."""
        inst = Instance.build(1, releases=[0, 0], procs=[10.0, 0.1])
        sched = eft_schedule(inst)  # long task first (EFT keeps order)
        assert sched.max_flow == pytest.approx(10.1)
        assert sched.max_stretch == pytest.approx(10.1 / 0.1)
