"""Unit tests for the baseline immediate-dispatch schedulers."""

from hypothesis import given, settings

from repro.core import Instance, LeastWorkAssign, RandomAssign, RoundRobinAssign
from tests.conftest import restricted_unit_instances


class TestRandomAssign:
    def test_respects_sets(self):
        inst = Instance.build(3, releases=[0] * 10, machine_sets=[{2, 3}] * 10)
        sched = RandomAssign(3, rng=0).run(inst)
        assert all(a.machine in {2, 3} for a in sched)

    def test_seed_deterministic(self):
        inst = Instance.build(3, releases=[0] * 6)
        a = RandomAssign(3, rng=4).run(inst)
        b = RandomAssign(3, rng=4).run(inst)
        assert a.same_placements(b)

    @given(restricted_unit_instances())
    @settings(max_examples=40, deadline=None)
    def test_valid_on_random(self, inst):
        RandomAssign(inst.m, rng=1).run(inst).validate()


class TestLeastWork:
    def test_balances_work(self):
        inst = Instance.build(2, releases=[0, 0, 0, 0], procs=[4, 1, 1, 1])
        sched = LeastWorkAssign(2).run(inst)
        loads = sched.machine_loads()
        # 4 on machine 1, then 1,1,1 pile on machine 2 (still lighter)
        assert loads.tolist() == [4.0, 3.0]

    def test_ignores_idle_time(self):
        """Unlike EFT, LeastWork counts total work, not availability:
        after a long gap it still remembers old work."""
        inst = Instance.build(2, releases=[0, 100], procs=[5, 1])
        sched = LeastWorkAssign(2).run(inst)
        assert sched.machine_of(1) == 2  # machine 1 has 5 units of history

    @given(restricted_unit_instances())
    @settings(max_examples=40, deadline=None)
    def test_valid_on_random(self, inst):
        LeastWorkAssign(inst.m).run(inst).validate()


class TestRoundRobin:
    def test_cycles(self):
        inst = Instance.build(3, releases=[0] * 5)
        sched = RoundRobinAssign(3).run(inst)
        assert [sched.machine_of(i) for i in range(5)] == [1, 2, 3, 1, 2]

    def test_skips_ineligible(self):
        inst = Instance.build(
            3, releases=[0, 0, 0], machine_sets=[{1, 2, 3}, {1, 3}, {1, 2}]
        )
        sched = RoundRobinAssign(3).run(inst)
        assert [sched.machine_of(i) for i in range(3)] == [1, 3, 1]

    @given(restricted_unit_instances())
    @settings(max_examples=40, deadline=None)
    def test_valid_on_random(self, inst):
        RoundRobinAssign(inst.m).run(inst).validate()
