"""Unit tests for the task/instance model."""

import json

import pytest

from repro.core import Instance, Task


class TestTask:
    def test_basic_construction(self):
        t = Task(tid=0, release=1.5, proc=2.0, machines=frozenset({1, 3}))
        assert t.release == 1.5
        assert t.proc == 2.0
        assert t.machines == {1, 3}

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError, match="release"):
            Task(tid=0, release=-1, proc=1)

    def test_zero_processing_rejected(self):
        with pytest.raises(ValueError, match="processing"):
            Task(tid=0, release=0, proc=0)

    def test_empty_processing_set_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Task(tid=0, release=0, proc=1, machines=frozenset())

    def test_bad_machine_index_rejected(self):
        with pytest.raises(ValueError, match="indices"):
            Task(tid=0, release=0, proc=1, machines=frozenset({0, 2}))

    def test_machines_coerced_to_frozenset(self):
        t = Task(tid=0, release=0, proc=1, machines={2, 3})
        assert isinstance(t.machines, frozenset)

    def test_eligible_unrestricted(self):
        t = Task(tid=0, release=0, proc=1)
        assert t.eligible(4) == {1, 2, 3, 4}
        assert t.is_eligible(3, 4)
        assert not t.is_eligible(5, 4)

    def test_eligible_restricted(self):
        t = Task(tid=0, release=0, proc=1, machines=frozenset({2}))
        assert t.eligible(4) == {2}
        assert t.is_eligible(2)
        assert not t.is_eligible(1)

    def test_restricted_to(self):
        t = Task(tid=0, release=0, proc=1)
        t2 = t.restricted_to([1, 2])
        assert t2.machines == {1, 2}
        assert t.machines is None  # original untouched

    def test_is_unit(self):
        assert Task(tid=0, release=0, proc=1).is_unit
        assert not Task(tid=0, release=0, proc=1.5).is_unit


class TestInstance:
    def test_sorting_by_release(self):
        tasks = (
            Task(tid=0, release=3, proc=1),
            Task(tid=1, release=1, proc=1),
            Task(tid=2, release=2, proc=1),
        )
        inst = Instance(m=2, tasks=tasks)
        assert [t.release for t in inst] == [1, 2, 3]

    def test_same_release_sorted_by_tid(self):
        tasks = (
            Task(tid=5, release=1, proc=1),
            Task(tid=2, release=1, proc=1),
        )
        inst = Instance(m=2, tasks=tasks)
        assert [t.tid for t in inst] == [2, 5]

    def test_duplicate_tid_rejected(self):
        tasks = (Task(tid=0, release=0, proc=1), Task(tid=0, release=1, proc=1))
        with pytest.raises(ValueError, match="duplicate"):
            Instance(m=2, tasks=tasks)

    def test_machine_set_exceeding_m_rejected(self):
        tasks = (Task(tid=0, release=0, proc=1, machines=frozenset({3})),)
        with pytest.raises(ValueError, match="exceeds"):
            Instance(m=2, tasks=tasks)

    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError, match="machine"):
            Instance(m=0, tasks=())

    def test_derived_quantities(self):
        inst = Instance.build(3, releases=[0, 1, 2], procs=[2, 3, 1])
        assert inst.n == 3
        assert inst.total_work == 6
        assert inst.pmax == 3
        assert not inst.all_unit
        assert list(inst.machines) == [1, 2, 3]

    def test_all_unit(self):
        inst = Instance.build(2, releases=[0, 1], procs=1.0)
        assert inst.all_unit

    def test_is_restricted(self):
        unrestricted = Instance.build(2, releases=[0], procs=1.0)
        assert not unrestricted.is_restricted
        # a set equal to all machines is not a proper restriction
        full = Instance.build(2, releases=[0], procs=1.0, machine_sets=[{1, 2}])
        assert not full.is_restricted
        proper = Instance.build(2, releases=[0], procs=1.0, machine_sets=[{1}])
        assert proper.is_restricted

    def test_build_scalar_proc(self):
        inst = Instance.build(2, releases=[0, 0], procs=2.5)
        assert all(t.proc == 2.5 for t in inst)

    def test_build_length_mismatch(self):
        with pytest.raises(ValueError, match="procs"):
            Instance.build(2, releases=[0, 1], procs=[1])
        with pytest.raises(ValueError, match="machine_sets"):
            Instance.build(2, releases=[0, 1], machine_sets=[{1}])

    def test_with_machine_sets(self):
        inst = Instance.build(3, releases=[0, 1])
        inst2 = inst.with_machine_sets([{1}, {2, 3}])
        assert inst2[0].machines == {1}
        assert inst2[1].machines == {2, 3}
        assert inst[0].machines is None

    def test_json_roundtrip(self):
        inst = Instance.build(
            3, releases=[0, 1.5], procs=[1, 2], machine_sets=[{1, 2}, None], keys=[7, None]
        )
        back = Instance.from_json(inst.to_json())
        assert back.m == inst.m
        for a, b in zip(inst, back):
            assert (a.tid, a.release, a.proc, a.machines, a.key) == (
                b.tid,
                b.release,
                b.proc,
                b.machines,
                b.key,
            )

    def test_json_is_valid_json(self):
        inst = Instance.build(2, releases=[0])
        payload = json.loads(inst.to_json())
        assert payload["m"] == 2

    def test_processing_sets(self):
        inst = Instance.build(2, releases=[0, 0], machine_sets=[{1}, None])
        assert inst.processing_sets() == [frozenset({1}), frozenset({1, 2})]
