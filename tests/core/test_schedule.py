"""Unit tests for the schedule container and validation."""

import numpy as np
import pytest

from repro.core import Instance, Schedule, ScheduleError, Task


def simple_instance() -> Instance:
    return Instance.build(2, releases=[0, 0, 1], procs=[2, 1, 1])


class TestConstruction:
    def test_missing_placement_rejected(self):
        inst = simple_instance()
        with pytest.raises(ScheduleError, match="without placement"):
            Schedule(inst, {0: (1, 0.0)})

    def test_unknown_placement_rejected(self):
        inst = simple_instance()
        with pytest.raises(ScheduleError, match="unknown"):
            Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (1, 2.0), 9: (1, 0.0)})

    def test_accessors(self):
        inst = simple_instance()
        sched = Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (2, 1.0)})
        assert sched.machine_of(0) == 1
        assert sched.start_of(2) == 1.0
        assert sched.completion_of(0) == 2.0
        assert sched.flow_of(2) == 1.0
        assert len(sched) == 3


class TestObjectives:
    def test_max_flow(self):
        inst = simple_instance()
        # task 1 waits behind task 0 on machine 1
        sched = Schedule(inst, {0: (1, 0.0), 1: (1, 2.0), 2: (2, 1.0)})
        assert sched.max_flow == 3.0  # task 1: completes 3, released 0
        assert sched.makespan == 3.0

    def test_mean_flow_and_stretch(self):
        inst = Instance.build(1, releases=[0, 0], procs=[1, 1])
        sched = Schedule(inst, {0: (1, 0.0), 1: (1, 1.0)})
        assert sched.mean_flow == pytest.approx(1.5)
        assert sched.max_stretch == pytest.approx(2.0)

    def test_machine_loads(self):
        inst = simple_instance()
        sched = Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (2, 1.0)})
        assert np.allclose(sched.machine_loads(), [2.0, 2.0])

    def test_flows_array_order(self):
        inst = simple_instance()
        sched = Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (2, 1.0)})
        assert sched.flows().tolist() == [2.0, 1.0, 1.0]


class TestValidation:
    def test_valid_schedule_passes(self):
        inst = simple_instance()
        sched = Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (2, 1.0)})
        sched.validate()
        assert sched.is_valid()

    def test_start_before_release_rejected(self):
        inst = simple_instance()
        sched = Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (2, 0.5)})
        with pytest.raises(ScheduleError, match="before release"):
            sched.validate()

    def test_overlap_rejected(self):
        inst = simple_instance()
        sched = Schedule(inst, {0: (1, 0.0), 1: (1, 1.0), 2: (2, 1.0)})
        with pytest.raises(ScheduleError, match="before task"):
            sched.validate()

    def test_eligibility_rejected(self):
        inst = Instance.build(2, releases=[0], machine_sets=[{1}])
        sched = Schedule(inst, {0: (2, 0.0)})
        with pytest.raises(ScheduleError, match="not in processing set"):
            sched.validate()

    def test_machine_out_of_range_rejected(self):
        inst = Instance.build(2, releases=[0])
        sched = Schedule(inst, {0: (3, 0.0)})
        with pytest.raises(ScheduleError, match="outside"):
            sched.validate()

    def test_back_to_back_allowed(self):
        inst = Instance.build(1, releases=[0, 0], procs=[1, 1])
        sched = Schedule(inst, {0: (1, 0.0), 1: (1, 1.0)})
        sched.validate()


class TestComparison:
    def test_same_placements(self):
        inst = simple_instance()
        a = Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (2, 1.0)})
        b = Schedule(inst, {0: (1, 0.0), 1: (2, 0.0), 2: (2, 1.0)})
        c = Schedule(inst, {0: (2, 0.0), 1: (1, 0.0), 2: (2, 1.0)})
        assert a.same_placements(b)
        assert not a.same_placements(c)

    def test_on_machine_sorted(self):
        inst = Instance.build(1, releases=[0, 0, 0], procs=1.0)
        sched = Schedule(inst, {0: (1, 2.0), 1: (1, 0.0), 2: (1, 1.0)})
        assert [a.task.tid for a in sched.on_machine(1)] == [1, 2, 0]
