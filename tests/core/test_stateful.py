"""Stateful property test of the online EFT scheduler.

A hypothesis rule-based state machine drives an EFT scheduler through
an arbitrary online task sequence, checking the machine-level
invariants after every submission — the strongest correctness net for
the scheduler's incremental state.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import EFT, Task


class EFTMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.m = 4
        self.eft = EFT(self.m, tiebreak="min")
        self.clock = 0.0
        self.tid = 0

    @rule(
        dt=st.floats(0, 3, allow_nan=False),
        proc=st.floats(0.1, 4, allow_nan=False),
        set_kind=st.integers(0, 3),
    )
    def submit_task(self, dt, proc, set_kind):
        self.clock += dt
        if set_kind == 0:
            machines = None
        elif set_kind == 1:
            machines = frozenset({1 + (self.tid % self.m)})
        elif set_kind == 2:
            start = 1 + (self.tid % (self.m - 1))
            machines = frozenset({start, start + 1})
        else:
            machines = frozenset(range(1, self.m + 1))
        record = self.eft.submit(
            Task(tid=self.tid, release=self.clock, proc=proc, machines=machines)
        )
        self.tid += 1
        # dispatch-level postconditions
        assert record.start >= self.clock
        assert record.machine in (machines or frozenset(range(1, self.m + 1)))
        assert record.machine in record.tie_set

    @invariant()
    def completions_consistent(self):
        # completion times never precede the last release handled
        for j, c in self.eft.completions.items():
            assert c >= 0.0
        # the materialised schedule is always feasible
        if self.eft.n_dispatched:
            self.eft.schedule().validate()

    @invariant()
    def waiting_work_nonnegative(self):
        w = self.eft.waiting_work(self.clock)
        assert all(v >= 0 for v in w.values())


EFTMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestEFTStateMachine = EFTMachine.TestCase
