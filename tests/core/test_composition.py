"""Tests for the Theorem 6 composition scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EFT, Instance, eft_schedule
from repro.core.composition import ComposedDisjointScheduler
from repro.offline import optimal_unit_fmax
from repro.psets import DisjointIntervals


def disjoint_instance(m, k, n, seed):
    rng = np.random.default_rng(seed)
    strat = DisjointIntervals(m, k)
    homes = rng.integers(1, m + 1, n)
    return Instance.build(
        m,
        releases=sorted(float(x) for x in rng.integers(0, max(2, n // m), n)),
        procs=1.0,
        machine_sets=[strat.replicas(int(h)) for h in homes],
    )


class TestComposition:
    def test_groups_discovered(self):
        inst = disjoint_instance(6, 3, 12, 0)
        comp = ComposedDisjointScheduler(6, lambda size: EFT(size, tiebreak="min"))
        comp.run(inst)
        assert comp.n_groups <= 2

    def test_rejects_overlapping_sets(self):
        comp = ComposedDisjointScheduler(4, lambda size: EFT(size, tiebreak="min"))
        from repro.core import Task

        comp.submit(Task(tid=0, release=0, proc=1, machines=frozenset({1, 2})))
        with pytest.raises(ValueError, match="not disjoint"):
            comp.submit(Task(tid=1, release=0, proc=1, machines=frozenset({2, 3})))

    @given(st.integers(2, 4), st.integers(5, 25), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_composed_eft_equals_plain_eft(self, k, n, seed):
        """Theorem 6 with EFT inner reproduces restriction-aware EFT
        exactly (EFT's decisions are already group-local)."""
        m = 2 * k
        inst = disjoint_instance(m, k, n, seed)
        plain = eft_schedule(inst, tiebreak="min")
        comp = ComposedDisjointScheduler(m, lambda size: EFT(size, tiebreak="min"))
        composed = comp.run(inst)
        assert composed.same_placements(plain)

    @given(st.integers(2, 3), st.integers(5, 18), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_corollary1_through_composition(self, k, n, seed):
        """The composed algorithm inherits the 3 - 2/k guarantee."""
        m = 2 * k
        inst = disjoint_instance(m, k, n, seed)
        comp = ComposedDisjointScheduler(m, lambda size: EFT(size, tiebreak="min"))
        value = comp.run(inst).max_flow
        opt = optimal_unit_fmax(inst)
        assert value <= (3 - 2 / k) * opt + 1e-9

    def test_composition_with_other_inner(self):
        """The construction is generic: compose the round-robin
        baseline per group."""
        from repro.core import RoundRobinAssign

        inst = disjoint_instance(6, 3, 12, 3)
        comp = ComposedDisjointScheduler(6, lambda size: RoundRobinAssign(size))
        sched = comp.run(inst)
        sched.validate()
