"""Tests for the non-clairvoyant replica-selection policies."""

import pytest
from hypothesis import given, settings

from repro.core import Instance, Task, eft_schedule
from repro.core.nonclairvoyant import C3Like, LeastOutstanding
from tests.conftest import restricted_unit_instances


class TestLeastOutstanding:
    def test_spreads_simultaneous_arrivals(self):
        inst = Instance.build(3, releases=[0, 0, 0], procs=2.0)
        sched = LeastOutstanding(3).run(inst)
        assert sorted(sched.machine_of(i) for i in range(3)) == [1, 2, 3]

    def test_counts_decay_over_time(self):
        """Requests dispatched long ago no longer count as
        outstanding."""
        lor = LeastOutstanding(2)
        lor.submit(Task(tid=0, release=0, proc=1))
        lor.submit(Task(tid=1, release=0, proc=1))
        # both machines outstanding=1 at t=0; at t=5 both are free
        rec = lor.submit(Task(tid=2, release=5, proc=1))
        assert rec.machine == 1  # tie broken by index among zero counts

    def test_respects_processing_sets(self):
        inst = Instance.build(
            3, releases=[0, 0], procs=1.0, machine_sets=[{2, 3}, {2, 3}]
        )
        sched = LeastOutstanding(3).run(inst)
        assert {sched.machine_of(0), sched.machine_of(1)} == {2, 3}

    def test_nonclairvoyance(self):
        """LOR ignores task sizes: two queued tasks of very different
        lengths count the same, so it can pick the machine EFT
        avoids."""
        lor = LeastOutstanding(2)
        lor.submit(Task(tid=0, release=0, proc=100))  # M1 long
        lor.submit(Task(tid=1, release=0, proc=1))  # M2 short
        rec = lor.submit(Task(tid=2, release=0.5, proc=1))
        # counts: both 1 -> index tie -> machine 1 despite its backlog
        assert rec.machine == 1

    @given(restricted_unit_instances())
    @settings(max_examples=40, deadline=None)
    def test_valid_on_random(self, inst):
        LeastOutstanding(inst.m).run(inst).validate()


class TestC3Like:
    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            C3Like(2, alpha=0.0)
        with pytest.raises(ValueError):
            C3Like(2, alpha=1.5)

    def test_penalises_queue_buildup(self):
        c3 = C3Like(2)
        c3.submit(Task(tid=0, release=0, proc=5))
        c3.submit(Task(tid=1, release=0, proc=5))
        c3.submit(Task(tid=2, release=0, proc=5))  # M1 now has 2 outstanding
        rec = c3.submit(Task(tid=3, release=0, proc=5))
        assert rec.machine == 2  # (1+q)^3 strongly favours the shorter queue

    def test_ewma_feedback(self):
        """A machine observed to be slow gets deprioritised even at
        equal queue lengths."""
        c3 = C3Like(2, alpha=1.0)
        # machine 1 serves a long task, machine 2 a short one
        c3.submit(Task(tid=0, release=0, proc=10))  # -> M1 (tie, score equal, index)
        c3.submit(Task(tid=1, release=0, proc=1))  # -> M2
        # at t=20 both are idle and feedback has arrived:
        # ewma M1 = 10, M2 = 1
        rec = c3.submit(Task(tid=2, release=20, proc=1))
        assert rec.machine == 2

    @given(restricted_unit_instances())
    @settings(max_examples=40, deadline=None)
    def test_valid_on_random(self, inst):
        C3Like(inst.m).run(inst).validate()


class TestAgainstEFT:
    def test_unit_uniform_load_close_to_eft(self):
        """With unit tasks, outstanding count == waiting work, so LOR
        approximates EFT; its Fmax stays within a small factor."""
        from repro.simulation import WorkloadSpec, generate_workload

        spec = WorkloadSpec(m=8, n=2000, lam=0.6 * 8, k=3, strategy="overlapping")
        inst = generate_workload(spec, rng=1)
        eft_val = eft_schedule(inst, tiebreak="min").max_flow
        lor_val = LeastOutstanding(8).run(inst).max_flow
        assert lor_val <= 3 * eft_val + 2
