"""The array fast path must be decision-identical to reference EFT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import eft_schedule
from repro.core.arrayeft import (
    array_eft_fmax,
    array_eft_schedule,
    clear_set_cache,
    fast_eft_fmax,
    fast_eft_schedule,
    set_cache_info,
)
from tests.conftest import restricted_unit_instances, unrestricted_instances


@given(restricted_unit_instances())
@settings(max_examples=80, deadline=None)
def test_identical_min(inst):
    assert array_eft_schedule(inst, "min").same_placements(
        eft_schedule(inst, tiebreak="min")
    )


@given(restricted_unit_instances())
@settings(max_examples=50, deadline=None)
def test_identical_max(inst):
    assert array_eft_schedule(inst, "max").same_placements(
        eft_schedule(inst, tiebreak="max")
    )


@given(unrestricted_instances())
@settings(max_examples=50, deadline=None)
def test_identical_on_unrestricted(inst):
    assert array_eft_schedule(inst, "min").same_placements(
        eft_schedule(inst, tiebreak="min")
    )


@given(restricted_unit_instances())
@settings(max_examples=40, deadline=None)
def test_fmax_shortcut_agrees(inst):
    assert array_eft_fmax(inst, "min") == pytest.approx(
        eft_schedule(inst, tiebreak="min").max_flow
    )


def test_rand_rejected():
    from repro.core import Instance

    inst = Instance.build(2, releases=[0])
    with pytest.raises(ValueError, match="min.*max"):
        array_eft_schedule(inst, "rand")
    with pytest.raises(ValueError, match="min.*max"):
        array_eft_fmax(inst, "rand")


def test_fast_entry_points_fall_back_for_rand():
    """The auto-selected entry points must not crash on pass-through
    tie-breaks: ``rand`` silently takes the reference path, and with a
    pinned seed it reproduces the reference decisions exactly."""
    from repro.simulation import WorkloadSpec, generate_workload

    spec = WorkloadSpec(m=6, n=120, lam=0.6 * 6, k=2, strategy="overlapping")
    inst = generate_workload(spec, rng=9)
    fast = fast_eft_schedule(inst, tiebreak="rand", rng=77)
    ref = eft_schedule(inst, tiebreak="rand", rng=77)
    assert fast.same_placements(ref, tol=0.0)
    assert fast_eft_fmax(inst, tiebreak="rand", rng=77) == ref.max_flow


def test_fast_entry_points_use_array_path_for_min_max():
    from repro.core.vecengine import VecSchedule
    from repro.simulation import WorkloadSpec, generate_workload

    spec = WorkloadSpec(m=6, n=80, lam=0.5 * 6, k=2, strategy="disjoint")
    inst = generate_workload(spec, rng=2)
    for tb in ("min", "max"):
        sched = fast_eft_schedule(inst, tiebreak=tb)
        assert isinstance(sched, VecSchedule)
        assert sched.same_placements(eft_schedule(inst, tiebreak=tb), tol=0.0)
        assert fast_eft_fmax(inst, tiebreak=tb) == eft_schedule(inst, tiebreak=tb).max_flow


def test_processing_set_cache_is_reused_across_calls():
    """Satellite regression: set lowering must hit the process-wide LRU
    on repeat solves instead of rebuilding per call."""
    from repro.simulation import WorkloadSpec, generate_workload

    spec = WorkloadSpec(m=8, n=100, lam=0.5 * 8, k=2, strategy="overlapping")
    inst = generate_workload(spec, rng=4)
    clear_set_cache()
    array_eft_schedule(inst, "min")
    first = set_cache_info()
    assert first.misses > 0  # the distinct sets were lowered once...
    array_eft_schedule(inst, "min")
    second = set_cache_info()
    assert second.misses == first.misses  # ...and never again
    assert second.hits > first.hits


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    tiebreak=st.sampled_from(["min", "max"]),
)
@settings(max_examples=25, deadline=None)
def test_identical_on_dynamic_workloads(seed, tiebreak):
    """Parity holds on the rebalance-era generators too: hotspot-shift
    popularity over a flash-crowd rate, randomized by seed."""
    from repro.simulation import (
        DynamicWorkloadSpec,
        FlashCrowd,
        HotspotShift,
        generate_dynamic_workload,
    )

    spec = DynamicWorkloadSpec(
        m=8,
        n=120,
        rate=FlashCrowd(base=3.0, peak=15.0, start=5.0, duration=4.0),
        popularity=HotspotShift(m=8, s=1.5, shifts=((10.0, 4),)),
        k=2,
    )
    inst = generate_dynamic_workload(spec, rng=seed)
    assert array_eft_schedule(inst, tiebreak).same_placements(
        eft_schedule(inst, tiebreak=tiebreak)
    )


def test_workload_scale_sanity():
    """A Figure-11-sized workload runs through the fast path and
    matches the reference on the objective."""
    from repro.simulation import WorkloadSpec, generate_workload

    spec = WorkloadSpec(m=15, n=4000, lam=0.7 * 15, k=3, strategy="overlapping")
    inst = generate_workload(spec, rng=3)
    assert array_eft_fmax(inst, "min") == pytest.approx(
        eft_schedule(inst, tiebreak="min").max_flow
    )
