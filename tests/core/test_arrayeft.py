"""The array fast path must be decision-identical to reference EFT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import eft_schedule
from repro.core.arrayeft import array_eft_fmax, array_eft_schedule
from tests.conftest import restricted_unit_instances, unrestricted_instances


@given(restricted_unit_instances())
@settings(max_examples=80, deadline=None)
def test_identical_min(inst):
    assert array_eft_schedule(inst, "min").same_placements(
        eft_schedule(inst, tiebreak="min")
    )


@given(restricted_unit_instances())
@settings(max_examples=50, deadline=None)
def test_identical_max(inst):
    assert array_eft_schedule(inst, "max").same_placements(
        eft_schedule(inst, tiebreak="max")
    )


@given(unrestricted_instances())
@settings(max_examples=50, deadline=None)
def test_identical_on_unrestricted(inst):
    assert array_eft_schedule(inst, "min").same_placements(
        eft_schedule(inst, tiebreak="min")
    )


@given(restricted_unit_instances())
@settings(max_examples=40, deadline=None)
def test_fmax_shortcut_agrees(inst):
    assert array_eft_fmax(inst, "min") == pytest.approx(
        eft_schedule(inst, tiebreak="min").max_flow
    )


def test_rand_rejected():
    from repro.core import Instance

    inst = Instance.build(2, releases=[0])
    with pytest.raises(ValueError, match="min.*max"):
        array_eft_schedule(inst, "rand")
    with pytest.raises(ValueError, match="min.*max"):
        array_eft_fmax(inst, "rand")


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    tiebreak=st.sampled_from(["min", "max"]),
)
@settings(max_examples=25, deadline=None)
def test_identical_on_dynamic_workloads(seed, tiebreak):
    """Parity holds on the rebalance-era generators too: hotspot-shift
    popularity over a flash-crowd rate, randomized by seed."""
    from repro.simulation import (
        DynamicWorkloadSpec,
        FlashCrowd,
        HotspotShift,
        generate_dynamic_workload,
    )

    spec = DynamicWorkloadSpec(
        m=8,
        n=120,
        rate=FlashCrowd(base=3.0, peak=15.0, start=5.0, duration=4.0),
        popularity=HotspotShift(m=8, s=1.5, shifts=((10.0, 4),)),
        k=2,
    )
    inst = generate_dynamic_workload(spec, rng=seed)
    assert array_eft_schedule(inst, tiebreak).same_placements(
        eft_schedule(inst, tiebreak=tiebreak)
    )


def test_workload_scale_sanity():
    """A Figure-11-sized workload runs through the fast path and
    matches the reference on the objective."""
    from repro.simulation import WorkloadSpec, generate_workload

    spec = WorkloadSpec(m=15, n=4000, lam=0.7 * 15, k=3, strategy="overlapping")
    inst = generate_workload(spec, rng=3)
    assert array_eft_fmax(inst, "min") == pytest.approx(
        eft_schedule(inst, tiebreak="min").max_flow
    )
