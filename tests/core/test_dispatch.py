"""Unit tests for the immediate-dispatch driver."""

import pytest

from repro.core import EFT, ImmediateDispatchScheduler, Instance, Task, run_online


class TestDriver:
    def test_abstract_choose(self):
        sched = ImmediateDispatchScheduler(2)
        with pytest.raises(NotImplementedError):
            sched.submit(Task(tid=0, release=0, proc=1))

    def test_history_records_tie_sets(self):
        eft = EFT(3, tiebreak="min")
        eft.submit(Task(tid=0, release=0, proc=1))
        assert eft.history[0].tie_set == {1, 2, 3}
        assert eft.history[0].machine == 1

    def test_task_counts(self):
        eft = EFT(2, tiebreak="min")
        for i in range(4):
            eft.submit(Task(tid=i, release=0, proc=1))
        assert eft.task_counts == {1: 2, 2: 2}

    def test_empty_processing_set_guard(self):
        eft = EFT(2)
        task = Task(tid=0, release=0, proc=1, machines=frozenset({1}))
        object.__setattr__(task, "machines", frozenset())  # simulate corruption
        with pytest.raises(ValueError, match="empty processing set"):
            eft.submit(task)

    def test_choose_outside_set_guard(self):
        class Rogue(ImmediateDispatchScheduler):
            def choose(self, task):
                return 2, frozenset({2})

        rogue = Rogue(2)
        with pytest.raises(ValueError, match="outside the"):
            rogue.submit(Task(tid=0, release=0, proc=1, machines=frozenset({1})))

    def test_run_checks_m(self):
        inst = Instance.build(3, releases=[0])
        with pytest.raises(ValueError, match="m="):
            EFT(2).run(inst)

    def test_run_online_wrapper(self):
        inst = Instance.build(2, releases=[0, 0], procs=1.0)
        sched = run_online(inst, EFT(2, tiebreak="min"))
        sched.validate()
        assert len(sched) == 2

    def test_incremental_schedule_materialisation(self):
        eft = EFT(2, tiebreak="min")
        eft.submit(Task(tid=0, release=0, proc=1))
        partial = eft.schedule()
        assert len(partial) == 1
        eft.submit(Task(tid=1, release=1, proc=1))
        assert len(eft.schedule()) == 2

    def test_waiting_work_clamps_to_zero(self):
        eft = EFT(2)
        eft.submit(Task(tid=0, release=0, proc=1))
        w = eft.waiting_work(5.0)
        assert w == {1: 0.0, 2: 0.0}
