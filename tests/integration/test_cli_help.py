"""Regression guard: every registered subcommand answers ``--help``.

A subparser whose lazy imports, argument declarations or handler wiring
break shows up here before any heavier integration test runs — and the
parser/handler tables cannot drift apart silently.
"""

import pytest

from repro.cli import _HANDLERS, build_parser, main


def _subcommands() -> list[str]:
    parser = build_parser()
    (sub,) = parser._subparsers._group_actions
    return sorted(sub.choices)


@pytest.mark.parametrize("command", _subcommands())
def test_subcommand_help_exits_zero(command, capsys):
    with pytest.raises(SystemExit) as exc:
        main([command, "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "usage:" in out
    assert command in out


def test_every_subcommand_has_a_handler():
    assert set(_subcommands()) == set(_HANDLERS)


def test_top_level_help(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for command in _subcommands():
        assert command in out
