"""The example scripts must run end-to-end.

Only the fast examples execute here (the heavier studies are covered
by the benchmark suite, which exercises the same code paths at
controlled scale).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    """Execute an example as __main__ and return its stdout."""
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "EFT-min" in out
        assert "exact offline optimum" in out
        assert "Fmax" in out

    def test_adversary_gantt(self, capsys):
        out = run_example("adversary_gantt.py", capsys)
        assert "stable profile" in out
        assert "m-k+1" in out

    def test_preemption_study(self, capsys):
        out = run_example("preemption_study.py", capsys)
        assert "preemptive" in out
        assert "SRPT" in out

    def test_all_examples_exist_and_compile(self):
        expected = {
            "quickstart.py",
            "kvstore_simulation.py",
            "adversary_gantt.py",
            "maxload_analysis.py",
            "competitive_ratio_study.py",
            "tail_latency_study.py",
            "preemption_study.py",
        }
        found = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= found
        import py_compile

        for name in sorted(found):
            py_compile.compile(str(EXAMPLES / name), doraise=True)
