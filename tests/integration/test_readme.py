"""The README quickstart snippet must actually run."""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"


def extract_python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_quickstart_snippet_runs(capsys):
    blocks = extract_python_blocks(README.read_text())
    assert blocks, "README lost its quickstart snippet"
    namespace: dict = {}
    exec(compile(blocks[0], "README.md", "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert "Fmax" in out  # the gantt footer printed


def test_architecture_tree_mentions_every_package():
    text = README.read_text()
    import repro

    root = Path(repro.__file__).parent
    packages = {p.parent.name for p in root.glob("*/__init__.py")}
    for pkg in packages:
        assert pkg in text, f"README architecture section misses {pkg!r}"
