"""Integration tests: the paper's guarantees against exact optima.

These are the end-to-end checks of the upper bounds:

* Theorem 1 / Proposition 1: EFT within ``3 - 2/m`` of OPT on
  unrestricted instances;
* Theorem 2: FIFO (= EFT) *optimal* for unit tasks;
* Corollary 1: EFT within ``3 - 2/k`` on disjoint size-``k`` sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, eft_schedule, fifo_schedule
from repro.offline import optimal_fmax, optimal_unit_fmax
from repro.psets import DisjointIntervals
from tests.conftest import unrestricted_instances


class TestTheorem1:
    @given(unrestricted_instances(max_m=3, max_n=7))
    @settings(max_examples=40, deadline=None)
    def test_eft_within_3_minus_2_over_m(self, inst):
        opt = optimal_fmax(inst)
        online = eft_schedule(inst, tiebreak="min").max_flow
        assert online <= (3 - 2 / inst.m) * opt + 1e-6

    def test_single_machine_fifo_optimal(self):
        """Corollary of Theorem 1: 3 - 2/1 = 1, FIFO optimal on m=1."""
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(1, 8))
            inst = Instance.build(
                1,
                releases=np.sort(rng.uniform(0, 5, n)),
                procs=rng.uniform(0.2, 2, n),
            )
            assert eft_schedule(inst).max_flow == pytest.approx(optimal_fmax(inst))


class TestTheorem2:
    @given(
        st.integers(1, 4),
        st.lists(st.integers(0, 6), min_size=1, max_size=14),
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_optimal_for_unit_tasks(self, m, releases):
        """Theorem 2: FIFO solves P|online-r_i, p_i=p|Fmax optimally."""
        inst = Instance.build(m, releases=sorted(float(r) for r in releases), procs=1.0)
        fifo_val = fifo_schedule(inst, tiebreak="min").max_flow
        assert fifo_val == pytest.approx(float(optimal_unit_fmax(inst)))

    def test_scaled_unit_tasks(self):
        """The theorem covers any common p (here p = 3) — scale time."""
        inst = Instance.build(2, releases=[0, 0, 0, 3.0], procs=3.0)
        fifo_val = fifo_schedule(inst).max_flow
        scaled = Instance.build(2, releases=[0, 0, 0, 1.0], procs=1.0)
        assert fifo_val == pytest.approx(3.0 * optimal_unit_fmax(scaled))


class TestCorollary1:
    @pytest.mark.parametrize("m,k", [(4, 2), (6, 2), (6, 3), (8, 4)])
    def test_eft_within_3_minus_2_over_k(self, m, k):
        """Corollary 1 on random disjoint instances vs exact unit OPT."""
        rng = np.random.default_rng(42 + m + k)
        strat = DisjointIntervals(m, k)
        for _ in range(8):
            n = int(rng.integers(4, 5 * m))
            releases = np.sort(rng.integers(0, max(2, n // m), size=n)).astype(float)
            homes = rng.integers(1, m + 1, size=n)
            inst = Instance.build(
                m,
                releases=releases,
                procs=1.0,
                machine_sets=[strat.replicas(int(h)) for h in homes],
            )
            opt = optimal_unit_fmax(inst)
            online = eft_schedule(inst, tiebreak="min").max_flow
            assert online <= (3 - 2 / k) * opt + 1e-9

    def test_tiebreak_does_not_break_guarantee(self):
        rng = np.random.default_rng(7)
        strat = DisjointIntervals(6, 3)
        for tiebreak in ("min", "max"):
            for _ in range(5):
                n = 24
                releases = np.sort(rng.integers(0, 4, size=n)).astype(float)
                homes = rng.integers(1, 7, size=n)
                inst = Instance.build(
                    6,
                    releases=releases,
                    procs=1.0,
                    machine_sets=[strat.replicas(int(h)) for h in homes],
                )
                opt = optimal_unit_fmax(inst)
                online = eft_schedule(inst, tiebreak=tiebreak).max_flow
                assert online <= (3 - 2 / 3) * opt + 1e-9
