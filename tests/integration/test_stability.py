"""Tests for the stability (phase boundary) experiment."""

import numpy as np
import pytest

from repro.experiments.stability import growth_rate, run


class TestGrowthRate:
    def test_flat_series(self):
        assert growth_rate([100, 200, 400], [3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_linear_series(self):
        assert growth_rate([100, 200, 300], [10.0, 20.0, 30.0]) == pytest.approx(0.1)


class TestStabilityExperiment:
    @pytest.fixture(scope="class")
    def table(self):
        return run(m=10, k=2, ns=(400, 800, 1600), repeats=2, rng_seed=5)

    def test_two_regimes(self, table):
        assert len(table.rows) == 2
        assert "stable" in table.rows[0][0]
        assert "unstable" in table.rows[1][0]

    def test_unstable_grows(self, table):
        row = table.rows[1]
        # Fmax at the largest n clearly exceeds the smallest n's
        assert row[-2] > 1.5 * row[2]

    def test_stable_bounded(self, table):
        row = table.rows[0]
        assert row[-2] < 3 * max(row[2], 1.0)

    def test_slopes_ordered(self, table):
        stable_slope = float(table.rows[0][-1])
        unstable_slope = float(table.rows[1][-1])
        assert unstable_slope > stable_slope
