"""The self-check harness must pass everywhere."""

from repro.experiments import verify


def test_all_claims_pass():
    table = verify.run(rng_seed=0)
    statuses = {row[0]: row[1] for row in table.rows}
    assert len(table.rows) == 10
    assert all(s == "PASS" for s in statuses.values()), statuses
    assert "all claims verified" in table.notes[0]


def test_different_seed_also_passes():
    table = verify.run(rng_seed=99)
    assert all(row[1] == "PASS" for row in table.rows)


def test_cli_verify(capsys):
    from repro.cli import main

    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "FAIL" not in out
