"""The experiment harness runs and reproduces the paper's shapes
(reduced scales; the benchmarks run the paper-scale versions)."""

import numpy as np
import pytest

from repro.experiments import fig03, fig08, fig10, fig11, ratios, table1, table2


class TestTable1:
    def test_renders(self):
        t = table1.run(15)
        text = t.to_text()
        assert "FIFO" in text
        assert "3 - 2/m" in text
        assert len(t.rows) >= 10


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return table2.run(m=8, k=3, p=500)

    def test_all_rows_present(self, table):
        refs = " ".join(str(r[-1]) for r in table.rows)
        for thm in ("Thm 3", "Thm 4", "Thm 5", "Cor 1", "Thm 7", "Thm 8", "Thm 9", "Thm 10"):
            assert thm in refs

    def test_lower_bounds_nearly_achieved(self, table):
        for row in table.rows:
            structure, algo, kind, theory, achieved, ref = row
            if kind == ">=":
                assert float(achieved) > float(theory) * 0.97, row

    def test_upper_bound_respected(self, table):
        for row in table.rows:
            if row[2] == "<=":
                assert float(row[4]) <= float(row[3]) + 1e-9


class TestFig03:
    def test_trace(self):
        r = fig03.run(6, 3, steps=30)
        assert r.fmax == 4.0  # m - k + 1
        assert r.converged_at is not None
        assert np.allclose(r.profiles[r.converged_at], r.stable)
        assert "M1" in r.gantt
        assert "w_tau" in r.to_text()


class TestFig08:
    def test_three_cases(self):
        t = fig08.run(m=6)
        assert len(t.rows) == 3
        uniform_row = t.rows[0]
        assert all(v == 1.0 for v in uniform_row[1:-1])

    def test_worst_case_decreasing(self):
        t = fig08.run(m=6)
        worst_row = [float(x) for x in t.rows[1][1:-1]]
        assert worst_row == sorted(worst_row, reverse=True)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(
            m=10,
            s_values=np.array([0.0, 1.0, 1.5]),
            k_values=np.array([1, 3, 5, 10]),
            n_permutations=12,
            rng_seed=3,
        )

    def test_shapes(self, result):
        assert result.sweep.loads["overlapping"].shape == (3, 4)

    def test_overlapping_wins(self, result):
        assert np.all(result.sweep.ratio() >= 1 - 1e-9)
        assert result.peak_gain > 1.1

    def test_boundaries_equal(self, result):
        ratio = result.sweep.ratio()
        assert np.allclose(ratio[0], 1.0)  # s = 0 row
        assert np.allclose(ratio[:, -1], 1.0)  # k = m column

    def test_renders(self, result):
        text = result.to_text()
        assert "Figure 10b" in text
        assert "peak" in text


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.run(
            m=15,
            k=3,
            n=1500,
            repeats=3,
            loads={"uniform": (40, 80), "shuffled": (20, 45), "worst": (20, 45)},
            rng_seed=11,
        )

    def test_all_series_present(self, result):
        for case in ("uniform", "shuffled", "worst"):
            for strategy in ("overlapping", "disjoint"):
                for heuristic in ("EFT-Min", "EFT-Max"):
                    series = result.series(case, strategy, heuristic)
                    assert len(series) == 2

    def test_fmax_increases_with_load(self, result):
        for case in ("uniform", "shuffled", "worst"):
            for strategy in ("overlapping", "disjoint"):
                series = result.series(case, strategy, "EFT-Min")
                assert series[1][1] >= series[0][1]

    def test_overlapping_beats_disjoint_at_high_load(self, result):
        """The paper's experimental headline, visible even at reduced
        scale: at the top load of each facet overlapping's Fmax is no
        worse than disjoint's."""
        for case in ("uniform", "shuffled", "worst"):
            ov = dict(result.series(case, "overlapping", "EFT-Min"))
            dj = dict(result.series(case, "disjoint", "EFT-Min"))
            top = max(ov)
            assert ov[top] <= dj[top] + 1e-9

    def test_red_lines_match_paper(self, result):
        """LP max loads: ~100 uniform; ~66/52 shuffled; ~59/36 worst
        (within a few points — shuffled is a median over few repeats)."""
        lines = result.max_load_lines
        assert lines["uniform"]["overlapping"] == pytest.approx(100, abs=1)
        assert lines["uniform"]["disjoint"] == pytest.approx(100, abs=1)
        assert lines["worst"]["overlapping"] == pytest.approx(59, abs=2)
        assert lines["worst"]["disjoint"] == pytest.approx(36, abs=2)
        assert lines["shuffled"]["overlapping"] == pytest.approx(66, abs=12)
        assert lines["shuffled"]["disjoint"] == pytest.approx(52, abs=12)

    def test_table_renders(self, result):
        text = result.to_text()
        assert "Figure 11" in text
        assert "LP max load" in text


class TestRatios:
    def test_study_table(self):
        t = ratios.run(m=6, k=3, n=18, trials=6, rng_seed=2)
        assert len(t.rows) == 3
        # guarantee columns must hold for the two bounded settings
        unrestricted = t.rows[0]
        disjoint = t.rows[1]
        assert float(unrestricted[2]) <= 3 - 2 / 6 + 1e-9
        assert float(disjoint[2]) <= 3 - 2 / 3 + 1e-9
