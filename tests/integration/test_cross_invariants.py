"""Cross-module invariants: every solver/scheduler pair must agree on
the partial order the theory dictates.

For a unit, integral-release, restricted instance the full chain is

    lower bounds <= preemptive OPT <= non-preemptive OPT (= unit OPT)
        <= FPTAS value <= (1+eps) OPT, and OPT <= EFT <= RestrictedFIFO-like
        heuristics' values are all >= OPT.

These orderings knit together seven independent implementations
(volume bounds, interval max-flow, matching, branch-and-bound, DP,
analytic EFT, event-driven engine), so a bug in any one of them shows
up as an inversion here.
"""

import pytest
from hypothesis import given, settings

from repro.core import EFT, RestrictedFIFO, eft_schedule
from repro.core.arrayeft import array_eft_fmax
from repro.core.nonclairvoyant import LeastOutstanding
from repro.offline import (
    fptas_fmax,
    opt_lower_bound,
    optimal_fmax,
    optimal_preemptive_fmax,
    optimal_unit_fmax,
    optimal_unit_sum_flow,
)
from repro.simulation import Simulator
from tests.conftest import restricted_unit_instances, unrestricted_instances


@given(restricted_unit_instances(max_m=3, max_n=8))
@settings(max_examples=25, deadline=None)
def test_solver_chain_unit(inst):
    lb = opt_lower_bound(inst)
    pre = optimal_preemptive_fmax(inst)
    unit = float(optimal_unit_fmax(inst))
    bnb = optimal_fmax(inst)
    eps = 0.3
    fptas = fptas_fmax(inst, eps=eps)
    eft = eft_schedule(inst, tiebreak="min").max_flow
    assert lb <= pre + 1e-4
    assert pre <= unit + 1e-4
    assert unit == pytest.approx(bnb)
    assert bnb - 1e-6 <= fptas <= (1 + eps) * bnb + 1e-6
    assert eft >= unit - 1e-9


@given(restricted_unit_instances(max_m=4, max_n=12))
@settings(max_examples=30, deadline=None)
def test_all_schedulers_at_least_opt(inst):
    opt = float(optimal_unit_fmax(inst))
    for sched in (
        eft_schedule(inst, tiebreak="min"),
        eft_schedule(inst, tiebreak="max"),
        RestrictedFIFO(inst.m).run(inst),
        LeastOutstanding(inst.m).run(inst),
    ):
        assert sched.max_flow >= opt - 1e-9


@given(restricted_unit_instances(max_m=4, max_n=10))
@settings(max_examples=25, deadline=None)
def test_sum_and_max_optima_consistent(inst):
    """The min-sum schedule's mean bounds every schedule's mean; the
    min-max schedule's max bounds every schedule's max."""
    total, sum_sched = optimal_unit_sum_flow(inst)
    opt_max = float(optimal_unit_fmax(inst))
    eft = eft_schedule(inst, tiebreak="min")
    assert total <= float(eft.flows().sum()) + 1e-9
    assert opt_max <= sum_sched.max_flow + 1e-9
    assert opt_max <= eft.max_flow + 1e-9


@given(unrestricted_instances(max_m=4, max_n=12))
@settings(max_examples=25, deadline=None)
def test_three_eft_implementations_agree(inst):
    """Analytic driver, array fast path and event-driven engine are
    three routes to the same schedule."""
    analytic = eft_schedule(inst, tiebreak="min")
    assert array_eft_fmax(inst, "min") == pytest.approx(analytic.max_flow)
    sim = Simulator(EFT(inst.m, tiebreak="min"))
    sim.add_instance(inst)
    assert sim.run().max_flow == pytest.approx(analytic.max_flow)


@given(restricted_unit_instances(max_m=4, max_n=10))
@settings(max_examples=20, deadline=None)
def test_replicating_more_never_hurts_opt(inst):
    """Growing every processing set can only lower the optimum
    (more scheduling freedom)."""
    m = inst.m
    grown = inst.with_machine_sets(
        [
            set(t.eligible(m)) | {min((max(t.eligible(m)) % m) + 1, m)}
            for t in inst
        ]
    )
    assert optimal_unit_fmax(grown) <= optimal_unit_fmax(inst)
