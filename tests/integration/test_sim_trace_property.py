"""Property-style cross-validation of the three execution paths.

For random workloads across seeds, machine counts and tie-breaks, the
event-driven :class:`Simulator`, the analytic ``eft_schedule`` driver
and a recorded-trace replay must all produce the *same placements* —
the engine's raison d'être (engine.py, reason 3) extended to the new
trace substrate.
"""

import numpy as np
import pytest

from repro.campaigns import record, replay_into
from repro.core import EFT, eft_schedule
from repro.simulation import Simulator
from repro.simulation.workload import WorkloadSpec, generate_workload

CONFIGS = [
    (m, tiebreak, seed)
    for m in (4, 8, 15)
    for tiebreak in ("min", "max", "rand")
    for seed in (0, 1, 2)
]


def _instance(m, seed):
    k = 2 if m < 8 else 3
    spec = WorkloadSpec(
        m=m,
        n=60,
        lam=0.6 * m,
        k=k,
        strategy="overlapping" if seed % 2 == 0 else "disjoint",
        case="shuffled",
        s=1.0,
        size_dist="exp" if seed % 3 == 0 else "unit",
    )
    return generate_workload(spec, rng=np.random.default_rng(1000 * m + seed))


@pytest.mark.parametrize("m,tiebreak,seed", CONFIGS)
def test_simulator_matches_analytic_eft(m, tiebreak, seed):
    """Event-driven execution == analytic schedule, placement for
    placement (random tie-breaks share the seed, so the decision
    streams coincide)."""
    inst = _instance(m, seed)
    analytic = eft_schedule(inst, tiebreak=tiebreak, rng=seed)
    sim = Simulator(EFT(m, tiebreak=tiebreak, rng=seed))
    sim.add_instance(inst)
    result = sim.run()
    assert result.n_pending == 0
    assert result.schedule.same_placements(analytic)


@pytest.mark.parametrize("m,tiebreak,seed", CONFIGS)
def test_trace_replay_reproduces_schedule(m, tiebreak, seed):
    """record -> replay_into reproduces the original schedule exactly."""
    inst = _instance(m, seed)
    original = eft_schedule(inst, tiebreak=tiebreak, rng=seed)
    trace = record(original, scheduler=f"EFT-{tiebreak}")
    replayed = replay_into(EFT(m, tiebreak=tiebreak, rng=seed), trace)
    assert original.same_placements(replayed)
    assert trace.schedule().same_placements(original)
