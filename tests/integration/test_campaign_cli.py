"""CLI smoke tests for the campaign subsystem: ``repro campaign``,
``repro replay`` and the ``--jobs`` flag on the figure commands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_campaign_and_replay_registered(self):
        parser = build_parser()
        args = parser.parse_args(["campaign", "fig11", "--quick", "-j", "2"])
        assert args.command == "campaign" and args.name == "fig11" and args.jobs == 2
        args = parser.parse_args(["replay", "--golden", "eft-min-m4"])
        assert args.command == "replay" and args.golden == "eft-min-m4"

    def test_jobs_flag_on_figures(self):
        parser = build_parser()
        assert parser.parse_args(["fig10", "--quick", "-j", "3"]).jobs == 3
        assert parser.parse_args(["fig11", "--quick", "--jobs", "4"]).jobs == 4

    def test_campaign_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "fig99"])


class TestCampaignCommand:
    def _argv(self, tmp_path, jobs="2"):
        return [
            "campaign",
            "fig11",
            "--m", "6",
            "--k", "2",
            "--n", "150",
            "--repeats", "2",
            "-j", jobs,
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
        ]

    def test_run_then_full_cache_hit(self, tmp_path, capsys):
        assert main(self._argv(tmp_path)) == 0
        first = capsys.readouterr().out
        assert "0 cached" in first and "0 failed" in first
        assert (tmp_path / "out" / "fig11.txt").is_file()
        assert (tmp_path / "out" / "fig11.manifest.json").is_file()

        # Second invocation: every unit served from cache, none executed.
        assert main(self._argv(tmp_path, jobs="1")) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second
        assert "Figure 11" in second

    def test_cache_survives_job_count_change(self, tmp_path, capsys):
        main(self._argv(tmp_path, jobs="1"))
        capsys.readouterr()
        main(self._argv(tmp_path, jobs="2"))
        assert "0 executed" in capsys.readouterr().out

    def test_fig10_campaign(self, tmp_path, capsys):
        argv = [
            "campaign", "fig10", "--quick", "--m", "6", "--permutations", "4",
            "-j", "2", "--cache-dir", str(tmp_path / "c"), "--out", str(tmp_path / "o"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Figure 10b" in out and "executed" in out
        assert main(argv) == 0
        assert "0 executed" in capsys.readouterr().out

    def test_metrics_byte_identical_across_jobs(self, tmp_path, capsys):
        """The acceptance check: ``--metrics`` output is byte-identical
        for -j 1 and -j 4 (wall-clock timings live in the manifest, not
        the metrics snapshot)."""
        m1, m4 = tmp_path / "m1.json", tmp_path / "m4.json"
        assert main(self._argv(tmp_path, jobs="1") + ["--metrics", str(m1)]) == 0
        assert main(self._argv(tmp_path, jobs="4") + ["--metrics", str(m4)]) == 0
        capsys.readouterr()
        assert m1.read_bytes() == m4.read_bytes()

    def test_metrics_schema_valid(self, tmp_path, capsys):
        from repro.obs import load_metrics

        path = tmp_path / "m.json"
        assert main(self._argv(tmp_path) + ["--metrics", str(path)]) == 0
        capsys.readouterr()
        data = load_metrics(path)  # validates on load
        assert data["meta"]["campaign"] == "fig11"
        assert data["metrics"]["counters"]["units"] > 0

    def test_fig11_metrics_flag(self, tmp_path, capsys):
        from repro.obs import load_metrics

        path = tmp_path / "fig11-metrics.json"
        argv = ["fig11", "--quick", "--m", "6", "--k", "2", "--metrics", str(path)]
        assert main(argv) == 0
        assert "metrics:" in capsys.readouterr().out
        assert load_metrics(path)["meta"]["figure"] == "fig11"

    def test_fig10_metrics_flag(self, tmp_path, capsys):
        from repro.obs import load_metrics

        path = tmp_path / "fig10-metrics.json"
        argv = ["fig10", "--quick", "--m", "6", "--seed", "3", "--metrics", str(path)]
        assert main(argv) == 0
        capsys.readouterr()
        data = load_metrics(path)
        assert data["meta"]["figure"] == "fig10"
        assert data["metrics"]["counters"]["grid_cells"] > 0

    def test_no_cache_flag(self, tmp_path, capsys):
        argv = self._argv(tmp_path)[:-4] + ["--no-cache"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert "0 cached" in first and "0 cached" in second


class TestReplayCommand:
    def test_golden_replay_matches(self, capsys):
        assert main(["replay", "--golden", "eft-min-m4"]) == 0
        out = capsys.readouterr().out
        assert "placements match recorded trace: yes" in out

    def test_cross_scheduler_replay(self, capsys):
        assert main(["replay", "--golden", "eft-min-m4", "--scheduler", "eft-max"]) == 0
        out = capsys.readouterr().out
        assert "replayed with: EFT-max" in out

    def test_replay_from_file(self, tmp_path, capsys):
        from repro.campaigns import dump_trace, goldens

        path = dump_trace(goldens.load_golden("eft-rand-m5"), tmp_path / "g.trace.jsonl")
        assert main(["replay", str(path), "--seed", "123"]) == 0
        out = capsys.readouterr().out
        assert "placements match recorded trace: yes" in out

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            main(["replay"])
        with pytest.raises(SystemExit):
            main(["replay", "some.jsonl", "--golden", "eft-min-m4"])


class TestFigureJobsFlag:
    def test_fig11_quick_parallel(self, capsys):
        """The acceptance smoke: fig11 --quick -j 2 runs and renders."""
        assert main(["fig11", "--quick", "-j", "2", "--m", "6", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out and "LP max load" in out

    def test_fig10_quick_parallel_matches_serial(self, capsys):
        argv = ["fig10", "--m", "6", "--quick", "--seed", "5"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["-j", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
