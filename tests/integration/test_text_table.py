"""Tests for the experiment table renderer."""

import pytest

from repro.experiments.common import TextTable


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(title="T", headers=["a", "longheader"])
        t.add_row("x", 1)
        t.add_row("longvalue", 2.5)
        lines = t.to_text().splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        data_lines = lines[2:]
        widths = {len(l) for l in data_lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_cell_count_checked(self):
        t = TextTable(title="T", headers=["a", "b"])
        with pytest.raises(ValueError, match="expected 2"):
            t.add_row("only-one")

    def test_float_formatting(self):
        t = TextTable(title="T", headers=["v"])
        t.add_row(1.5)
        t.add_row(2.0)
        t.add_row(0.333333333)
        text = t.to_text()
        assert "1.5" in text
        assert " 2 " in text or "2    " in text  # trailing zeros stripped
        assert "0.333" in text

    def test_notes_rendered(self):
        t = TextTable(title="T", headers=["a"])
        t.add_row(1)
        t.notes.append("hello")
        assert "note: hello" in t.to_text()

    def test_str_equals_to_text(self):
        t = TextTable(title="T", headers=["a"])
        t.add_row(1)
        assert str(t) == t.to_text()

    def test_nan_rendering(self):
        t = TextTable(title="T", headers=["v"])
        t.add_row(float("nan"))
        assert "nan" in t.to_text()


class TestAdversaryResultHelpers:
    def test_ratio(self):
        from repro.adversaries import EFTIntervalAdversary
        from repro.core import EFT

        result = EFTIntervalAdversary(4, 2, steps=4**3).run(lambda m: EFT(m, tiebreak="min"))
        assert result.ratio == result.fmax / result.opt_fmax
        assert result.opt_is_exact

    def test_tid_counter(self):
        from repro.adversaries import TidCounter

        tid = TidCounter()
        assert [tid() for _ in range(3)] == [0, 1, 2]
