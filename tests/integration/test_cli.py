"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in (
            ["table1"],
            ["table2"],
            ["fig03"],
            ["fig08"],
            ["fig10", "--quick"],
            ["fig11", "--quick"],
            ["campaign", "fig11", "--quick"],
            ["replay", "--golden", "eft-min-m4"],
            ["ratios"],
            ["explore"],
            ["tails"],
            ["stability"],
            ["verify"],
            ["demo"],
        ):
            args = parser.parse_args(cmd)
            assert args.command == cmd[0]

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--m", "15"]) == 0
        out = capsys.readouterr().out
        assert "FIFO" in out

    def test_fig08(self, capsys):
        assert main(["fig08", "--m", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "Worst-case" in out

    def test_fig03(self, capsys):
        assert main(["fig03", "--m", "6", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "w_tau" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 8 adversary" in out
        assert "Fmax" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--m", "8", "--k", "3", "--p", "100"]) == 0
        out = capsys.readouterr().out
        assert "Thm 8" in out

    def test_all_writes_directory(self, tmp_path, capsys, monkeypatch):
        """The batch runner writes one file per experiment (heavy
        campaigns monkeypatched to cheap stand-ins)."""
        from repro import experiments as exp
        from repro.cli import main
        from repro.experiments.common import TextTable

        def stub(*args, **kwargs):
            t = TextTable(title="stub", headers=["x"])
            t.add_row(1)
            return t

        for mod in (exp.fig10, exp.fig11, exp.table2, exp.tails, exp.stability, exp.verify, exp.ratios, exp.fig03):
            monkeypatch.setattr(mod, "run", stub)
        out_dir = tmp_path / "res"
        assert main(["all", "--out", str(out_dir)]) == 0
        written = {p.name for p in out_dir.glob("*.txt")}
        assert {"table1.txt", "fig08.txt", "fig10.txt", "fig11.txt", "verify.txt"} <= written
        assert "stub" in (out_dir / "fig10.txt").read_text()
        # the genuine (unpatched) experiments produced real tables
        assert "FIFO" in (out_dir / "table1.txt").read_text()

    def test_module_entry_point(self):
        """`python -m repro` imports cleanly (run in-process via
        runpy would exit; just verify the module exists)."""
        import importlib.util

        spec = importlib.util.find_spec("repro.__main__")
        assert spec is not None
