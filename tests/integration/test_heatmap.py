"""Tests for the ASCII heatmap renderer."""

import numpy as np
import pytest

from repro.experiments.common import render_heatmap


class TestRenderHeatmap:
    def test_extremes_map_to_end_shades(self):
        out = render_heatmap(np.array([[0.0, 100.0]]), ["r"], ["a", "b"], "t", vmin=0, vmax=100)
        body = out.splitlines()[2]
        assert "█" in body
        assert "  " in body  # the low cell renders as spaces

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="does not match"):
            render_heatmap(np.zeros((2, 2)), ["a"], ["x", "y"], "t")
        with pytest.raises(ValueError, match="2-D"):
            render_heatmap(np.zeros(3), ["a", "b", "c"], ["x"], "t")

    def test_constant_grid(self):
        out = render_heatmap(np.ones((2, 2)), ["a", "b"], ["x", "y"], "t")
        assert "scale" in out  # no div-by-zero on flat grids

    def test_row_labels_rendered(self):
        out = render_heatmap(np.zeros((2, 3)), ["first", "second"], [1, 2, 3], "t")
        assert "first" in out and "second" in out

    def test_fig10_heatmaps(self):
        from repro.experiments import fig10

        r = fig10.run(
            m=8,
            s_values=np.array([0.0, 1.0]),
            k_values=np.array([1, 4, 8]),
            n_permutations=5,
        )
        maps = r.to_heatmaps()
        assert "overlapping" in maps and "disjoint" in maps
        assert "█" in maps  # the k=m column is always at 100%
