"""Robustness at scale extremes and awkward numerics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EFT, Instance, Task, eft_schedule
from repro.maxload import max_load_lp
from repro.offline import optimal_preemptive_fmax, optimal_unit_fmax
from repro.simulation import WorkloadSpec, generate_workload, zipf_weights


class TestScaleExtremes:
    def test_large_cluster(self):
        """m = 100, 5000 tasks — the dispatch path must stay linear-ish."""
        spec = WorkloadSpec(m=100, n=5000, lam=50.0, k=3, strategy="overlapping")
        inst = generate_workload(spec, rng=0)
        sched = eft_schedule(inst, tiebreak="min")
        sched.validate()
        assert len(sched) == 5000

    def test_single_machine_everything(self):
        inst = Instance.build(1, releases=[0] * 20, procs=1.0)
        assert eft_schedule(inst).max_flow == 20.0
        assert optimal_unit_fmax(inst) == 20

    def test_m_one_k_edge(self):
        """k = m degenerates interval adversary preconditions; the
        strategies must still behave."""
        from repro.psets import DisjointIntervals, OverlappingIntervals

        for cls in (OverlappingIntervals, DisjointIntervals):
            strat = cls(4, 4)
            assert strat.replicas(2) == {1, 2, 3, 4}

    def test_large_lp(self):
        pop = zipf_weights(40, 1.2)
        sol = max_load_lp(pop, "overlapping", 5)
        assert 0 < sol.lam <= 40

    def test_huge_release_times(self):
        """Far-future releases must not break float comparisons."""
        inst = Instance.build(2, releases=[1e9, 1e9, 1e9 + 1], procs=1.0)
        sched = eft_schedule(inst, tiebreak="min")
        sched.validate()
        # the first pair fills both machines exactly until the third
        # release, so every flow is 1 — even at 1e9 magnitudes
        assert sched.max_flow == pytest.approx(1.0)

    def test_tiny_processing_times(self):
        inst = Instance.build(2, releases=[0.0, 0.0, 0.0], procs=1e-9)
        sched = eft_schedule(inst)
        sched.validate()
        assert sched.max_flow == pytest.approx(2e-9)


class TestAwkwardNumerics:
    @given(
        st.lists(
            st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_eft_valid_any_float_releases(self, releases):
        inst = Instance.build(3, releases=sorted(releases), procs=1.0)
        eft_schedule(inst, tiebreak="min").validate()

    def test_equal_release_equal_proc_determinism(self):
        """Fully degenerate instance: schedule must be reproducible."""
        inst = Instance.build(4, releases=[0.0] * 16, procs=1.0)
        a = eft_schedule(inst, tiebreak="min")
        b = eft_schedule(inst, tiebreak="min")
        assert a.same_placements(b)

    def test_preemptive_with_coincident_events(self):
        """Releases equal to deadlines of others produce zero-length
        intervals the solver must skip."""
        inst = Instance.build(2, releases=[0.0, 1.0, 1.0, 2.0], procs=1.0)
        val = optimal_preemptive_fmax(inst)
        assert 1.0 - 1e-6 <= val <= 2.0

    def test_adversary_numeric_stability_long_run(self):
        """The Theorem 10 stagger survives thousands of float
        accumulations without violating its own construction."""
        from repro.adversaries import AnyTiebreakAdversary

        adv = AnyTiebreakAdversary(4, 2, steps=400)
        result = adv.run(lambda m: EFT(m, tiebreak="max"))
        assert adv.regular_max_flow(result) >= 3 - 1e-6
