"""Adaptive adversaries through the event-driven engine.

The Theorem 8 adversary is oblivious, so it can be injected into the
:class:`Simulator` via OBSERVE callbacks — the mechanism adaptive
adversaries use — and must reproduce exactly the direct-driver run.
This knits together the engine's injection hook, the EFT scheduler and
the adversary construction.
"""

import pytest

from repro.adversaries import EFTIntervalAdversary, task_type, type_interval
from repro.core import EFT, Task
from repro.simulation import Simulator


def inject_adversary_batches(sim: Simulator, m: int, k: int, steps: int) -> None:
    """Schedule one OBSERVE per integer time releasing that step's
    batch at the current instant."""
    counter = {"tid": 0}

    def make_batch(step: int):
        def callback(s: Simulator) -> None:
            tasks = []
            for i in range(1, m + 1):
                lam = task_type(i, m, k)
                tasks.append(
                    Task(
                        tid=counter["tid"],
                        release=float(step),
                        proc=1.0,
                        machines=type_interval(lam, m, k),
                    )
                )
                counter["tid"] += 1
            s.add_tasks(tasks)

        return callback

    for step in range(steps):
        sim.at(float(step), make_batch(step))


@pytest.mark.parametrize("m,k", [(5, 2), (6, 3)])
def test_engine_reproduces_direct_adversary_run(m, k):
    steps = m**3
    direct = EFTIntervalAdversary(m, k, steps=steps).run(lambda mm: EFT(mm, tiebreak="min"))
    sim = Simulator(EFT(m, tiebreak="min"))
    inject_adversary_batches(sim, m, k, steps)
    result = sim.run()
    assert result.n_completed == steps * m
    assert result.max_flow == pytest.approx(direct.fmax)
    assert result.max_flow == m - k + 1


def test_engine_profile_matches_stable(m=6, k=3):
    """The engine's live waiting profile converges to w_tau too."""
    import numpy as np

    from repro.theory import stable_profile

    sim = Simulator(EFT(m, tiebreak="min"))
    inject_adversary_batches(sim, m, k, 40)
    profiles = []

    def snapshot(s: Simulator) -> None:
        profiles.append(s.waiting_profile())

    # sample just before each batch: OBSERVE events fire in scheduling
    # order, so schedule snapshots first
    sim2 = Simulator(EFT(m, tiebreak="min"))
    for t in range(40):
        sim2.at(float(t), snapshot)
    inject_adversary_batches(sim2, m, k, 40)
    sim2.run()
    assert np.allclose(profiles[-1], stable_profile(m, k))
