"""The `repro rebalance` verb and rebalance-trace replay, end to end."""

import json

import pytest

from repro.cli import main


def _run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestRebalanceVerb:
    def test_compare_wins_and_writes_events(self, capsys, tmp_path):
        events = tmp_path / "reb.trace.jsonl"
        code, out = _run(
            capsys,
            "rebalance", "--m", "12", "--n", "1500", "--policy", "compare",
            "--events", str(events),
        )
        assert code == 0
        assert "adaptive beats both static p99: yes" in out
        assert "static-overlapping" in out and "static-disjoint" in out
        header = json.loads(events.read_text().splitlines()[0])
        assert header["format"] == "repro-rebalance-trace"
        assert header["policy"] == "adaptive"

    def test_single_policy(self, capsys):
        code, out = _run(
            capsys, "rebalance", "--m", "8", "--n", "600", "--policy", "static"
        )
        assert code == 0
        assert "assignments sha256 (static):" in out

    def test_deterministic(self, capsys):
        argv = ("rebalance", "--m", "8", "--n", "600", "--policy", "adaptive", "--seed", "5")
        _, a = _run(capsys, *argv)
        _, b = _run(capsys, *argv)
        assert a == b


class TestRebalanceReplay:
    def _record(self, capsys, tmp_path):
        events = tmp_path / "reb.trace.jsonl"
        _run(
            capsys,
            "rebalance", "--m", "12", "--n", "1500", "--policy", "adaptive",
            "--events", str(events),
        )
        return events

    def test_replay_is_byte_identical(self, capsys, tmp_path):
        events = self._record(capsys, tmp_path)
        code, out = _run(capsys, "replay", str(events))
        assert code == 0
        assert "byte-identical replay: yes" in out

    def test_scheduler_override_rejected(self, capsys, tmp_path):
        events = self._record(capsys, tmp_path)
        with pytest.raises(SystemExit, match="--scheduler"):
            main(["replay", str(events), "--scheduler", "eft-max"])

    def test_schedule_traces_still_replay(self, capsys):
        """The sniffer must not hijack classic schedule traces."""
        code, out = _run(capsys, "replay", "--golden", "eft-min-m4")
        assert code == 0
        assert "placements match recorded trace: yes" in out
