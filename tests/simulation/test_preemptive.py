"""Tests for the preemptive engine and its policies."""

import pytest
from hypothesis import given, settings

from repro.core import Instance, eft_schedule, fifo_schedule
from repro.offline import optimal_preemptive_fmax
from repro.simulation.preemptive import (
    PreemptiveEngine,
    fifo_priority,
    preemptive_fifo_fmax,
    srpt_priority,
)
from tests.conftest import restricted_unit_instances, unrestricted_instances


def piece_volume(result, tid):
    return sum(b - a for _, a, b in result.pieces[tid])


class TestEngineInvariants:
    @given(unrestricted_instances(max_m=4, max_n=15))
    @settings(max_examples=40, deadline=None)
    def test_work_conservation(self, inst):
        """Every task receives exactly its processing time."""
        result = PreemptiveEngine(srpt_priority).run(inst)
        for t in inst:
            assert piece_volume(result, t.tid) == pytest.approx(t.proc, abs=1e-6)

    @given(unrestricted_instances(max_m=4, max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_no_machine_overlap(self, inst):
        result = PreemptiveEngine(srpt_priority).run(inst)
        per_machine: dict[int, list[tuple[float, float]]] = {}
        for tid, pieces in result.pieces.items():
            for j, a, b in pieces:
                per_machine.setdefault(j, []).append((a, b))
        for j, spans in per_machine.items():
            spans.sort()
            for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
                assert a2 >= b1 - 1e-9

    @given(unrestricted_instances(max_m=4, max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_no_task_parallelism(self, inst):
        """A task never runs on two machines at once."""
        result = PreemptiveEngine(srpt_priority).run(inst)
        for tid, pieces in result.pieces.items():
            spans = sorted((a, b) for _, a, b in pieces)
            for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
                assert a2 >= b1 - 1e-9

    @given(restricted_unit_instances(max_m=4, max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_eligibility_respected(self, inst):
        result = PreemptiveEngine(fifo_priority).run(inst)
        for t in inst:
            for j, a, b in result.pieces[t.tid]:
                assert t.is_eligible(j, inst.m)

    @given(unrestricted_instances(max_m=4, max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_pieces_after_release(self, inst):
        result = PreemptiveEngine(srpt_priority).run(inst)
        for t in inst:
            for j, a, b in result.pieces[t.tid]:
                assert a >= t.release - 1e-9


class TestPolicies:
    @given(unrestricted_instances(max_m=4, max_n=15))
    @settings(max_examples=40, deadline=None)
    def test_preemptive_fifo_matches_nonpreemptive(self, inst):
        """FIFO priorities never preempt (running tasks were released
        no later), so the completion profile equals non-preemptive
        FIFO's on unrestricted instances."""
        pre = PreemptiveEngine(fifo_priority).run(inst)
        non = fifo_schedule(inst, tiebreak="min")
        assert pre.preemptions == 0
        assert pre.max_flow == pytest.approx(non.max_flow, abs=1e-6)

    def test_srpt_improves_mean_flow(self):
        """The classic SRPT win: a short task released during a long
        one finishes immediately under SRPT."""
        inst = Instance.build(1, releases=[0.0, 1.0], procs=[10.0, 1.0])
        fifo = PreemptiveEngine(fifo_priority).run(inst)
        srpt = PreemptiveEngine(srpt_priority).run(inst)
        assert srpt.preemptions >= 1
        assert srpt.mean_flow < fifo.mean_flow
        assert srpt.flows[1] == pytest.approx(1.0)

    def test_srpt_can_hurt_max_flow(self):
        """...but SRPT starves the long task — its Fmax suffers, which
        is why the paper's objective favours FIFO-like policies."""
        inst = Instance.build(
            1, releases=[0.0] + [float(i) for i in range(1, 8)], procs=[5.0] + [1.0] * 7
        )
        fifo = PreemptiveEngine(fifo_priority).run(inst)
        srpt = PreemptiveEngine(srpt_priority).run(inst)
        assert srpt.max_flow > fifo.max_flow

    @given(restricted_unit_instances(max_m=4, max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_never_beats_preemptive_opt(self, inst):
        """Any online preemptive policy is bounded below by the exact
        preemptive optimum."""
        online = PreemptiveEngine(fifo_priority).run(inst).max_flow
        opt = optimal_preemptive_fmax(inst)
        assert online >= opt - 1e-4

    @given(unrestricted_instances(max_m=3, max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_fifo_within_paper_bound_of_preemptive_opt(self, inst):
        """Table 1: preemptive FIFO is (3 - 2/m)-competitive."""
        online = preemptive_fifo_fmax(inst)
        opt = optimal_preemptive_fmax(inst)
        assert online <= (3 - 2 / inst.m) * opt + 1e-4
