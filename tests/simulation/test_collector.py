"""Unit tests for simulation collectors."""

import numpy as np
import pytest

from repro.core import EFT, Instance
from repro.simulation import (
    ProfileSampler,
    QueueSampler,
    Simulator,
    steady_state_reached,
    trim_warmup,
)


class TestProfileSampler:
    def test_samples_profiles(self):
        inst = Instance.build(2, releases=[0, 0, 0], procs=[3, 3, 3])
        sim = Simulator(EFT(2, tiebreak="min"))
        sim.add_instance(inst)
        sampler = ProfileSampler(period=1.0)
        sampler.install(sim, horizon=5.0)
        sim.run()
        arr = sampler.as_array()
        assert arr.shape == (5, 2)
        # at t=1: machine 1 has 2 left of first task + 3 queued
        assert arr[0, 0] == pytest.approx(5.0)

    def test_times_recorded(self):
        sim = Simulator(EFT(1))
        sim.add_tasks([])
        sampler = ProfileSampler(period=2.0)
        sampler.install(sim, horizon=6.0)
        sim.run()
        assert sampler.times == [2.0, 4.0, 6.0]


class TestQueueSampler:
    def test_counts_queued(self):
        inst = Instance.build(1, releases=[0, 0, 0], procs=[2, 2, 2])
        sim = Simulator(EFT(1))
        sim.add_instance(inst)
        sampler = QueueSampler(period=1.0)
        sampler.install(sim, horizon=5.0)
        sim.run()
        # at t=1: one running, two queued
        assert sampler.queued[0] == 2


class TestTrimWarmup:
    def test_drops_prefix(self):
        out = trim_warmup(np.arange(10), 0.3)
        assert out.tolist() == [3, 4, 5, 6, 7, 8, 9]

    def test_zero_fraction(self):
        assert trim_warmup(np.arange(5), 0.0).size == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            trim_warmup(np.arange(5), 1.0)


class TestSteadyState:
    def test_flat_series(self):
        assert steady_state_reached(np.ones(300), window=100)

    def test_trending_series(self):
        assert not steady_state_reached(np.arange(300.0), window=100)

    def test_too_short(self):
        assert not steady_state_reached(np.ones(50), window=100)

    def test_zero_series(self):
        assert steady_state_reached(np.zeros(300), window=100)
