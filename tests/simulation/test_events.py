"""Unit tests for the event queue."""

from repro.simulation import EventKind, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, EventKind.RELEASE, "c")
        q.push(1.0, EventKind.RELEASE, "a")
        q.push(2.0, EventKind.RELEASE, "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_stable_within_time(self):
        """Simultaneous events fire in scheduling order (the adversary
        batches rely on it)."""
        q = EventQueue()
        for i in range(10):
            q.push(1.0, EventKind.RELEASE, i)
        assert [q.pop().payload for _ in range(10)] == list(range(10))

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, EventKind.OBSERVE)
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, EventKind.COMPLETE)
        assert q
