"""Unit tests for the event queue."""

from hypothesis import given, settings

from repro.core import EFT, eft_schedule
from repro.simulation import EventKind, EventQueue, Simulator
from tests.conftest import unrestricted_instances


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, EventKind.RELEASE, "c")
        q.push(1.0, EventKind.RELEASE, "a")
        q.push(2.0, EventKind.RELEASE, "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_stable_within_time(self):
        """Simultaneous events fire in scheduling order (the adversary
        batches rely on it)."""
        q = EventQueue()
        for i in range(10):
            q.push(1.0, EventKind.RELEASE, i)
        assert [q.pop().payload for _ in range(10)] == list(range(10))

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, EventKind.OBSERVE)
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, EventKind.COMPLETE)
        assert q

    def test_has_work(self):
        q = EventQueue()
        assert not q.has_work()
        q.push(1.0, EventKind.OBSERVE)
        assert not q.has_work()
        q.push(2.0, EventKind.RELEASE)
        assert q.has_work()


class TestSameInstantOrdering:
    """The pinned within-instant order: COMPLETE < RELEASE < OBSERVE."""

    def test_kind_priority_at_equal_time(self):
        q = EventQueue()
        # Scheduled in the *reverse* of the firing order.
        q.push(1.0, EventKind.OBSERVE, "observe")
        q.push(1.0, EventKind.RELEASE, "release")
        q.push(1.0, EventKind.COMPLETE, "complete")
        assert [q.pop().payload for _ in range(3)] == [
            "complete",
            "release",
            "observe",
        ]

    def test_priority_only_breaks_time_ties(self):
        q = EventQueue()
        q.push(2.0, EventKind.COMPLETE, "late-complete")
        q.push(1.0, EventKind.OBSERVE, "early-observe")
        assert q.pop().payload == "early-observe"

    def test_fifo_within_kind_at_equal_time(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, EventKind.RELEASE, i)
        q.push(1.0, EventKind.COMPLETE, "c")
        assert q.pop().payload == "c"
        assert [q.pop().payload for _ in range(5)] == list(range(5))


class TestCoincidingTimesMatchAnalytic:
    """With completions firing before same-instant releases, the
    event-driven simulator reproduces the analytic EFT schedule even
    when a release coincides with a completion."""

    def _simulate(self, inst, tiebreak):
        sim = Simulator(EFT(inst.m, tiebreak=tiebreak))
        sim.add_instance(inst)
        return sim.run()

    def test_release_at_completion_instant(self):
        # m=1, unit tasks released at 0, 1, 1: task 0 completes at 1,
        # exactly when tasks 1 and 2 arrive.  The freed machine must be
        # visible to the same-instant dispatch.
        from repro.core import Instance, Task

        inst = Instance(
            m=1,
            tasks=(
                Task(tid=0, release=0.0, proc=1.0),
                Task(tid=1, release=1.0, proc=1.0),
                Task(tid=2, release=1.0, proc=1.0),
            ),
        )
        result = self._simulate(inst, "min")
        analytic = eft_schedule(inst, tiebreak="min")
        assert result.schedule.same_placements(analytic)
        for tid in (0, 1, 2):
            assert result.schedule.start_of(tid) == analytic.start_of(tid)

    @given(unrestricted_instances(unit=True, integral_releases=True))
    @settings(max_examples=60, deadline=None)
    def test_integral_unit_instances(self, inst):
        """Unit procs + integral releases maximise coinciding
        completion/release instants."""
        for tiebreak in ("min", "max"):
            result = self._simulate(inst, tiebreak)
            analytic = eft_schedule(inst, tiebreak=tiebreak)
            assert result.schedule.same_placements(analytic)
