"""Unit tests for arrival processes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    batch_release_times,
    load_to_rate,
    poisson_release_times,
    rate_to_load,
)

NON_FINITE = [math.inf, -math.inf, math.nan]


class TestPoisson:
    def test_monotone(self):
        times = poisson_release_times(2.0, 100, rng=0)
        assert np.all(np.diff(times) > 0)

    def test_rate(self):
        """Mean inter-arrival of a rate-lambda process is 1/lambda."""
        times = poisson_release_times(4.0, 50_000, rng=1)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(0.25, rel=0.05)

    def test_start_offset(self):
        times = poisson_release_times(1.0, 10, rng=0, start=100.0)
        assert times[0] > 100.0

    def test_deterministic_by_seed(self):
        a = poisson_release_times(1.0, 10, rng=3)
        b = poisson_release_times(1.0, 10, rng=3)
        assert np.allclose(a, b)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_release_times(0.0, 10)
        with pytest.raises(ValueError):
            poisson_release_times(1.0, -1)

    def test_zero_n(self):
        assert poisson_release_times(1.0, 0).size == 0

    @pytest.mark.parametrize("bad", NON_FINITE)
    def test_non_finite_lam_rejected(self, bad):
        with pytest.raises(ValueError):
            poisson_release_times(bad, 10)

    @pytest.mark.parametrize("bad", NON_FINITE)
    def test_non_finite_start_rejected(self, bad):
        with pytest.raises(ValueError):
            poisson_release_times(1.0, 10, start=bad)


class TestBatches:
    def test_pattern(self):
        times = batch_release_times(3, 2, period=1.0)
        assert times.tolist() == [0, 0, 0, 1, 1, 1]

    def test_period(self):
        times = batch_release_times(1, 3, period=2.5)
        assert times.tolist() == [0, 2.5, 5.0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            batch_release_times(0, 1)

    @pytest.mark.parametrize("bad", NON_FINITE + [0.0, -1.0])
    def test_bad_period_rejected(self, bad):
        with pytest.raises(ValueError):
            batch_release_times(1, 3, period=bad)


class TestLoadConversion:
    def test_roundtrip(self):
        lam = load_to_rate(0.8, 15)
        assert lam == pytest.approx(12.0)
        assert rate_to_load(lam, 15) == pytest.approx(0.8)

    def test_full_load_is_m(self):
        """lambda = m loads the cluster at 100% (Section 7.1)."""
        assert load_to_rate(1.0, 15) == 15.0

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            load_to_rate(0.0, 15)

    @pytest.mark.parametrize("bad", NON_FINITE)
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ValueError):
            load_to_rate(bad, 15)
        with pytest.raises(ValueError):
            rate_to_load(bad, 15)

    def test_bad_m_rejected(self):
        with pytest.raises(ValueError):
            load_to_rate(0.5, 0)
        with pytest.raises(ValueError):
            rate_to_load(1.0, 0)

    @settings(max_examples=200, deadline=None)
    @given(
        load=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
        m=st.integers(min_value=1, max_value=10_000),
    )
    def test_roundtrip_load_property(self, load, m):
        """rate_to_load inverts load_to_rate across the sane domain."""
        assert rate_to_load(load_to_rate(load, m), m) == pytest.approx(load, rel=1e-12)

    @settings(max_examples=200, deadline=None)
    @given(
        lam=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
        m=st.integers(min_value=1, max_value=10_000),
    )
    def test_roundtrip_rate_property(self, lam, m):
        """load_to_rate inverts rate_to_load across the sane domain."""
        assert load_to_rate(rate_to_load(lam, m), m) == pytest.approx(lam, rel=1e-12)
