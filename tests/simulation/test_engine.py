"""The event-driven engine must reproduce the analytic EFT schedule."""

import pytest
from hypothesis import given, settings

from repro.core import EFT, Instance, Task, eft_schedule
from repro.simulation import Simulator
from tests.conftest import restricted_unit_instances, unrestricted_instances


class TestEngineBasics:
    def test_simple_run(self):
        inst = Instance.build(2, releases=[0, 0, 1], procs=[2, 1, 1])
        sim = Simulator(EFT(2, tiebreak="min"))
        sim.add_instance(inst)
        result = sim.run()
        assert result.n_completed == 3
        result.schedule.validate()

    def test_m_mismatch(self):
        sim = Simulator(EFT(2))
        with pytest.raises(ValueError, match="m="):
            sim.add_instance(Instance.build(3, releases=[0]))

    def test_run_until(self):
        inst = Instance.build(1, releases=[0, 0], procs=[1, 1])
        sim = Simulator(EFT(1))
        sim.add_instance(inst)
        result = sim.run(until=1.0)
        assert result.n_completed == 1

    def test_observer_callback(self):
        inst = Instance.build(1, releases=[0], procs=[2])
        sim = Simulator(EFT(1))
        sim.add_instance(inst)
        seen = {}
        sim.at(1.0, lambda s: seen.setdefault("profile", s.waiting_profile()))
        sim.run()
        assert seen["profile"] == [1.0]

    def test_observer_can_inject_tasks(self):
        """Adaptive-adversary hook: inject a task at observation time."""
        sim = Simulator(EFT(1))
        sim.add_tasks([Task(tid=0, release=0, proc=1)])

        def inject(s):
            s.add_tasks([Task(tid=1, release=s.now, proc=1)])

        sim.at(5.0, inject)
        result = sim.run()
        assert result.n_completed == 2
        assert result.schedule.start_of(1) == 5.0

    def test_utilization(self):
        inst = Instance.build(2, releases=[0, 0], procs=[2, 2])
        sim = Simulator(EFT(2))
        sim.add_instance(inst)
        result = sim.run()
        assert result.utilization == pytest.approx(1.0)

    def test_uncompleted_on(self):
        sim = Simulator(EFT(1))
        sim.add_tasks([Task(tid=0, release=0, proc=5), Task(tid=1, release=0, proc=5)])
        sim.at(1.0, lambda s: None)
        sim.run(until=1.0)
        assert sim.uncompleted_on([1]) == 2


class TestPendingCount:
    def test_full_run_has_no_pending(self):
        inst = Instance.build(2, releases=[0, 0, 1], procs=[2, 1, 1])
        sim = Simulator(EFT(2))
        sim.add_instance(inst)
        assert sim.run().n_pending == 0

    def test_truncated_run_counts_unstarted(self):
        # One machine, three unit tasks released together: at until=1.5
        # task 0 finished, task 1 is running, task 2 never started.
        sim = Simulator(EFT(1))
        sim.add_tasks([Task(tid=t, release=0, proc=1) for t in range(3)])
        result = sim.run(until=1.5)
        assert result.n_completed == 1
        assert result.n_pending == 1
        assert len(result.schedule) == 2  # the started pair only

    def test_truncation_before_any_completion(self):
        # Both tasks released at 0; at until=1.0 task 0 is still running
        # and task 1 sits in the queue, released but never started.
        sim = Simulator(EFT(1))
        sim.add_tasks([Task(tid=0, release=0, proc=5), Task(tid=1, release=0, proc=5)])
        result = sim.run(until=1.0)
        assert result.n_completed == 0
        assert result.n_pending == 1


class TestEngineMatchesAnalyticDriver:
    @given(unrestricted_instances())
    @settings(max_examples=50, deadline=None)
    def test_same_schedule_unrestricted(self, inst):
        analytic = eft_schedule(inst, tiebreak="min")
        sim = Simulator(EFT(inst.m, tiebreak="min"))
        sim.add_instance(inst)
        result = sim.run()
        assert result.schedule.same_placements(analytic)
        assert result.max_flow == pytest.approx(analytic.max_flow)

    @given(restricted_unit_instances())
    @settings(max_examples=50, deadline=None)
    def test_same_schedule_restricted(self, inst):
        analytic = eft_schedule(inst, tiebreak="max")
        sim = Simulator(EFT(inst.m, tiebreak="max"))
        sim.add_instance(inst)
        result = sim.run()
        assert result.schedule.same_placements(analytic)
