"""Tests for the canonical workload suites."""

import pytest

from repro.core import eft_schedule
from repro.simulation.suites import SUITES, get_suite, suite_names


class TestRegistry:
    def test_expected_suites_present(self):
        assert {"paper-fig11", "uniform-baseline", "hot-key", "heavy-tail", "bursty"} <= set(
            suite_names()
        )

    def test_lookup(self):
        suite = get_suite("paper-fig11")
        assert suite.spec.m == 15
        assert suite.spec.k == 3

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown suite"):
            get_suite("bogus")


class TestSuites:
    @pytest.mark.parametrize("name", sorted(SUITES))
    def test_every_suite_schedulable(self, name):
        suite = get_suite(name)
        inst = suite.instance(rng=0)
        assert inst.n == suite.spec.n
        sched = eft_schedule(inst, tiebreak="min")
        sched.validate()

    def test_deterministic_by_seed(self):
        suite = get_suite("hot-key")
        assert suite.instance(rng=3).to_json() == suite.instance(rng=3).to_json()

    def test_shared_popularity_across_draws(self):
        """Two draws share the bias pattern (same permutation), unlike
        fresh `generate_workload` calls with shuffled case."""
        suite = get_suite("paper-fig11")
        a = suite.instance(rng=1)
        b = suite.instance(rng=2)
        # home distributions drawn from the same weights: the most
        # popular replica-set start should coincide in expectation; we
        # check the popularity object is literally shared
        assert suite.popularity is get_suite("paper-fig11").popularity

    def test_with_load(self):
        base = get_suite("uniform-baseline")
        hot = base.with_load(0.9)
        assert hot.spec.lam == pytest.approx(0.9 * 15)
        assert hot.spec.n == base.spec.n
        hot.instance(rng=0)

    def test_heavy_tail_sizes_variable(self):
        inst = get_suite("heavy-tail").instance(rng=5)
        procs = [t.proc for t in inst]
        assert max(procs) > 3 * (sum(procs) / len(procs))
