"""The array backend must be bit-identical to the reference engine.

The vectorized fast path (``Simulator(backend="array"|"auto")``) is
only allowed to exist because nothing can tell it ran: every golden
fixture replays byte-identically, every SimulationResult field matches
the reference loop exactly (``==``, not approx), and ineligible
configurations — random tie-breaks, fault schedules, observer hooks —
fall back silently with the reason recorded.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EFT, Instance, Task
from repro.simulation import (
    Simulator,
    UnknownBackendError,
    WorkloadSpec,
    generate_workload,
)

RESULT_FIELDS = (
    "max_flow",
    "mean_flow",
    "makespan",
    "n_completed",
    "utilization",
    "n_pending",
    "n_requeued",
    "n_parked",
    "n_resumed",
    "total_downtime",
    "wasted_work",
    "n_preempted",
)


def _workload(m=8, n=300, k=3, strategy="overlapping", rng=5, load=0.7):
    spec = WorkloadSpec(m=m, n=n, lam=load * m, k=k, strategy=strategy)
    return generate_workload(spec, rng=rng)


def _pair(inst, tiebreak="min", until=None, feed="instance"):
    """Run the same workload on both backends; return (array, reference)
    (simulator, result) pairs."""
    out = []
    for backend in ("array", "reference"):
        sim = Simulator(EFT(inst.m, tiebreak=tiebreak), backend=backend)
        if feed == "instance":
            sim.add_instance(inst)
        else:
            sim.add_tasks(feed)
        out.append((sim, sim.run(until=until)))
    return out


def _assert_identical(ra, rr):
    """Field-exact SimulationResult equality (bit-level, tol=0)."""
    for f in RESULT_FIELDS:
        assert getattr(ra, f) == getattr(rr, f), f
    assert ra.schedule.same_placements(rr.schedule, tol=0.0)
    assert np.array_equal(ra.schedule.flows(), rr.schedule.flows())
    assert np.array_equal(ra.schedule.machine_loads(), rr.schedule.machine_loads())


class TestFullDrainParity:
    @pytest.mark.parametrize("tiebreak", ["min", "max"])
    @pytest.mark.parametrize("strategy", ["overlapping", "disjoint"])
    def test_bit_identical_results(self, tiebreak, strategy):
        inst = _workload(strategy=strategy)
        (sa, ra), (sr, rr) = _pair(inst, tiebreak=tiebreak)
        assert sa.backend_used == "array", sa.fallback_reason
        assert sr.backend_used == "reference"
        _assert_identical(ra, rr)
        # engine state is synced, not just the result
        assert sa.now == sr.now
        assert sa.starts == sr.starts
        assert sa.completions == sr.completions
        assert sa.assigned_machine == sr.assigned_machine
        assert sa.waiting_profile() == sr.waiting_profile()
        assert sa.scheduler.completions == sr.scheduler.completions
        assert sa.scheduler.task_counts == sr.scheduler.task_counts
        assert sa.scheduler.n_dispatched == sr.scheduler.n_dispatched

    def test_explicit_array_backend_equals_auto(self):
        inst = _workload(rng=11)
        for backend in ("array", "auto"):
            sim = Simulator(EFT(inst.m, tiebreak="min"), backend=backend)
            sim.add_instance(inst)
            sim.run()
            assert sim.backend_used == "array"
            assert sim.fallback_reason is None

    def test_result_recomputed_after_sync_matches(self):
        """result() re-derived from synced state (reference code path)
        must agree with the array-built result."""
        inst = _workload(rng=3)
        sim = Simulator(EFT(inst.m, tiebreak="min"), backend="array")
        sim.add_instance(inst)
        first = sim.run()
        assert sim.backend_used == "array"
        again = sim.result()
        for f in RESULT_FIELDS:
            assert getattr(first, f) == getattr(again, f), f
        assert first.schedule.same_placements(again.schedule, tol=0.0)


class TestTruncationParity:
    @pytest.mark.parametrize("until_frac", [0.0, 0.2, 0.5, 0.9, 1.5])
    def test_truncated_and_resumed_runs(self, until_frac):
        inst = _workload(rng=7)
        horizon = max(t.release for t in inst) + sum(t.proc for t in inst) / inst.m
        until = until_frac * horizon
        (sa, ra), (sr, rr) = _pair(inst, until=until)
        _assert_identical(ra, rr)
        assert sa.now == sr.now
        assert sa.waiting_profile() == sr.waiting_profile()
        assert sa.uncompleted_on([1, 2, 3]) == sr.uncompleted_on([1, 2, 3])
        # resuming after the cutoff continues seamlessly on both
        fa, fr = sa.run(), sr.run()
        _assert_identical(fa, fr)

    def test_cutoff_exactly_on_event_times(self):
        # unit tasks at integer times on one machine: the cutoff falls
        # exactly on release/complete instants (pinned-order boundary)
        tasks = [Task(tid=t, release=float(t // 2), proc=1.0) for t in range(8)]
        inst = Instance(m=2, tasks=tuple(tasks))
        for until in (0.0, 1.0, 2.0, 3.0):
            (sa, ra), (sr, rr) = _pair(inst, until=until)
            _assert_identical(ra, rr)
            assert sa.backend_used == "array", sa.fallback_reason

    def test_negative_and_pre_release_cutoffs_fall_back(self):
        inst = _workload(rng=13)
        sim = Simulator(EFT(inst.m), backend="array")
        sim.add_instance(inst)
        r = sim.run(until=-1.0)
        assert sim.backend_used == "reference"
        assert "cutoff" in sim.fallback_reason
        assert r.n_completed == 0


class TestShuffledReleases:
    """Satellite: out-of-release-order feeds must be handled exactly as
    the reference engine handles them (the event queue re-sorts)."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 40),
        m=st.integers(1, 5),
        tiebreak=st.sampled_from(["min", "max"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_shuffled_feed_parity(self, seed, n, m, tiebreak):
        rng = np.random.default_rng(seed)
        tasks = [
            Task(
                tid=i,
                release=float(rng.integers(0, 10)),
                proc=float(rng.uniform(0.2, 3.0)),
                machines=frozenset(
                    int(j) for j in rng.choice(m, size=rng.integers(1, m + 1), replace=False) + 1
                ),
            )
            for i in range(n)
        ]
        order = list(range(n))
        rng.shuffle(order)
        shuffled = [tasks[i] for i in order]
        (sa, ra), (sr, rr) = _pair(
            Instance(m=m, tasks=tuple(tasks)), tiebreak=tiebreak, feed=shuffled
        )
        assert sa.backend_used == "array", sa.fallback_reason
        _assert_identical(ra, rr)
        # Feed order only matters through equal-time event ties (the
        # queue is FIFO at an instant, on both backends); with distinct
        # releases the shuffled feed must agree with the sorted feed.
        if len({t.release for t in tasks}) == n:
            sim = Simulator(EFT(m, tiebreak=tiebreak), backend="reference")
            sim.add_instance(Instance(m=m, tasks=tuple(tasks)))
            _assert_identical(ra, sim.run())


class TestFallbacks:
    def test_unknown_backend_is_typed_error(self):
        with pytest.raises(UnknownBackendError, match="unknown backend"):
            Simulator(EFT(2), backend="simd")
        assert issubclass(UnknownBackendError, ValueError)

    def test_rand_tiebreak_falls_back_silently(self):
        inst = _workload(rng=17)
        sim = Simulator(EFT(inst.m, tiebreak="rand", rng=1), backend="array")
        sim.add_instance(inst)
        ra = sim.run()
        assert sim.backend_used == "reference"
        assert "tie-break" in sim.fallback_reason
        ref = Simulator(EFT(inst.m, tiebreak="rand", rng=1), backend="reference")
        ref.add_instance(inst)
        _assert_identical(ra, ref.run())

    def test_observer_falls_back_and_snapshots_stay_byte_identical(self):
        from repro.obs import SimRecorder
        from repro.obs.snapshot import metrics_snapshot, metrics_to_json

        inst = _workload(rng=19, n=150)
        texts = {}
        for backend in ("auto", "reference"):
            obs = SimRecorder()
            sim = Simulator(EFT(inst.m, tiebreak="min"), obs=obs, backend=backend)
            sim.add_instance(inst)
            sim.run()
            assert sim.backend_used == "reference"
            texts[backend] = metrics_to_json(metrics_snapshot(obs.registry))
        assert "observer" in Simulator(
            EFT(inst.m), obs=SimRecorder(), backend="auto"
        )._array_fallback_reason(None)
        assert texts["auto"] == texts["reference"]

    def test_fault_schedule_falls_back_but_empty_one_does_not(self):
        from repro.faults import FaultSchedule

        inst = _workload(rng=23, n=150)
        faulted = Simulator(
            EFT(inst.m), faults=FaultSchedule.build([(1, 5.0, 10.0)]), backend="array"
        )
        faulted.add_instance(inst)
        ra = faulted.run()
        assert faulted.backend_used == "reference"
        assert "fault" in faulted.fallback_reason
        ref = Simulator(
            EFT(inst.m), faults=FaultSchedule.build([(1, 5.0, 10.0)]), backend="reference"
        )
        ref.add_instance(inst)
        rr = ref.run()
        for f in RESULT_FIELDS:
            assert getattr(ra, f) == getattr(rr, f), f
        # the zero-fault identity: an *empty* schedule is expressible
        empty = Simulator(EFT(inst.m), faults=FaultSchedule.build([]), backend="array")
        empty.add_instance(inst)
        re_ = empty.run()
        assert empty.backend_used == "array", empty.fallback_reason
        plain = Simulator(EFT(inst.m), backend="reference")
        plain.add_instance(inst)
        _assert_identical(re_, plain.run())

    def test_started_simulator_falls_back(self):
        inst = _workload(rng=29, n=100)
        sim = Simulator(EFT(inst.m), backend="array")
        sim.add_instance(inst)
        sim.run(until=5.0)
        assert sim.backend_used == "array"
        sim.add_tasks([Task(tid=10_000, release=50.0, proc=1.0)])
        sim.run()
        assert sim.backend_used == "reference"
        assert "already started" in sim.fallback_reason

    def test_adversary_callback_falls_back(self):
        inst = _workload(rng=31, n=60)
        sim = Simulator(EFT(inst.m), backend="array")
        sim.add_instance(inst)
        sim.at(1.0, lambda s: None)
        sim.run()
        assert sim.backend_used == "reference"
        assert "OBSERVE" in sim.fallback_reason


class TestZooFallback:
    """Satellite: registry policies silently take the reference loop
    (``fallback_reason == "scheduler"``), while registry-built EFT
    still fast-forwards through the array engine bit-identically."""

    @pytest.mark.parametrize("name", ["srpt-ps", "nc-setup", "speed-eft", "lor"])
    def test_non_eft_policy_records_scheduler_reason(self, name):
        from repro.schedulers import get_scheduler

        inst = _workload(rng=37, n=80)
        sim = Simulator(get_scheduler(name, inst.m), backend="auto")
        sim.add_instance(inst)
        sim.run()
        assert sim.backend_used == "reference"
        assert sim.fallback_reason == "scheduler"

    def test_eft_subclass_is_not_plain_eft(self):
        """Subclassing EFT must not sneak onto the array path — the
        eligibility check is an exact type check."""
        from repro.schedulers import SRPTPS

        inst = _workload(rng=41, n=60)
        sim = Simulator(SRPTPS(inst.m), backend="auto")
        sim.add_instance(inst)
        sim.run()
        assert sim.backend_used == "reference"
        assert sim.fallback_reason == "scheduler"

    @pytest.mark.parametrize("name", ["eft-min", "eft-max"])
    def test_registry_eft_fast_forwards_byte_identically(self, name):
        from repro.campaigns.trace import dumps, record
        from repro.schedulers import get_scheduler

        inst = _workload(rng=43)
        runs = {}
        for backend in ("array", "reference"):
            sim = Simulator(get_scheduler(name, inst.m), backend=backend)
            sim.add_instance(inst)
            runs[backend] = (sim, sim.run())
        sa, ra = runs["array"]
        sr, rr = runs["reference"]
        assert sa.backend_used == "array", sa.fallback_reason
        assert sr.backend_used == "reference"
        _assert_identical(ra, rr)
        # trace bytes off the synced scheduler books are equal too
        texts = {
            b: dumps(record(s.scheduler.schedule(), scheduler=name))
            for b, (s, _) in runs.items()
        }
        assert texts["array"] == texts["reference"]


class TestDynamicWorkloads:
    @given(seed=st.integers(0, 2**31 - 1), tiebreak=st.sampled_from(["min", "max"]))
    @settings(max_examples=15, deadline=None)
    def test_parity_on_rebalance_era_generators(self, seed, tiebreak):
        from repro.simulation import (
            DynamicWorkloadSpec,
            FlashCrowd,
            HotspotShift,
            generate_dynamic_workload,
        )

        spec = DynamicWorkloadSpec(
            m=6,
            n=80,
            rate=FlashCrowd(base=3.0, peak=12.0, start=4.0, duration=3.0),
            popularity=HotspotShift(m=6, s=1.5, shifts=((8.0, 3),)),
            k=2,
        )
        inst = generate_dynamic_workload(spec, rng=seed)
        (sa, ra), (sr, rr) = _pair(inst, tiebreak=tiebreak)
        assert sa.backend_used == "array", sa.fallback_reason
        _assert_identical(ra, rr)
