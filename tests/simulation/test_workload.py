"""Unit tests for workload generation (the Figure 11 generator)."""

import numpy as np
import pytest

from repro.simulation import (
    WorkloadSpec,
    generate_workload,
    popularity_for_case,
    uniform_case,
)


class TestSpec:
    def test_average_load(self):
        spec = WorkloadSpec(m=15, n=100, lam=7.5)
        assert spec.average_load == pytest.approx(0.5)


class TestPopularityForCase:
    def test_cases(self):
        assert popularity_for_case(6, "uniform", 1.0).case == "uniform"
        assert popularity_for_case(6, "worst", 1.0).case == "worst"
        assert popularity_for_case(6, "shuffled", 1.0, rng=0).case == "shuffled"

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown popularity"):
            popularity_for_case(6, "bogus", 1.0)


class TestGenerate:
    def test_basic_shape(self):
        spec = WorkloadSpec(m=6, n=50, lam=3.0, k=3, strategy="overlapping")
        inst = generate_workload(spec, rng=0)
        assert inst.n == 50
        assert inst.m == 6
        assert all(len(t.machines) == 3 for t in inst)
        assert all(t.proc == 1.0 for t in inst)

    def test_sets_are_ring_intervals(self):
        from repro.psets import is_circular_interval

        spec = WorkloadSpec(m=6, n=80, lam=3.0, k=3, strategy="overlapping")
        inst = generate_workload(spec, rng=1)
        assert all(is_circular_interval(t.machines, 6) for t in inst)

    def test_disjoint_sets_partition(self):
        from repro.psets import is_disjoint_family

        spec = WorkloadSpec(m=6, n=80, lam=3.0, k=3, strategy="disjoint")
        inst = generate_workload(spec, rng=1)
        assert is_disjoint_family([t.machines for t in inst])

    def test_deterministic_by_seed(self):
        spec = WorkloadSpec(m=6, n=30, lam=2.0)
        a = generate_workload(spec, rng=9)
        b = generate_workload(spec, rng=9)
        assert a.to_json() == b.to_json()

    def test_popularity_override(self):
        spec = WorkloadSpec(m=4, n=30, lam=2.0, case="shuffled", s=1.0)
        pop = uniform_case(4)
        inst = generate_workload(spec, rng=0, popularity=pop)
        assert inst.n == 30

    def test_popularity_m_mismatch(self):
        spec = WorkloadSpec(m=4, n=10, lam=2.0)
        with pytest.raises(ValueError, match="m="):
            generate_workload(spec, rng=0, popularity=uniform_case(5))

    def test_worst_case_skews_homes(self):
        """With s large, most tasks home near machine 1 — their
        overlapping replica sets must start low."""
        spec = WorkloadSpec(m=8, n=400, lam=4.0, k=2, strategy="overlapping", case="worst", s=3.0)
        inst = generate_workload(spec, rng=3)
        starts = [min(t.machines) for t in inst]
        assert np.mean([s <= 2 for s in starts]) > 0.5
