"""Unit tests for the key-granularity store model."""

import numpy as np
import pytest

from repro.core import eft_schedule
from repro.simulation import BlockPlacement, HashRingPlacement, KeyValueStore


class TestPlacements:
    def test_block_round_robin(self):
        p = BlockPlacement(4)
        assert [p.home(k) for k in range(8)] == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_ring_deterministic(self):
        p = HashRingPlacement(4, virtual_nodes=16)
        homes = [p.home(k) for k in range(100)]
        assert homes == [p.home(k) for k in range(100)]

    def test_ring_in_range(self):
        p = HashRingPlacement(5)
        assert all(1 <= p.home(k) <= 5 for k in range(500))

    def test_ring_roughly_balanced(self):
        """With enough virtual nodes each machine owns a fair share."""
        p = HashRingPlacement(4, virtual_nodes=256)
        homes = np.array([p.home(k) for k in range(8000)])
        freq = np.bincount(homes, minlength=5)[1:] / 8000
        assert freq.min() > 0.1  # nobody starves

    def test_ring_salt_changes_layout(self):
        a = HashRingPlacement(4, salt="a")
        b = HashRingPlacement(4, salt="b")
        assert [a.home(k) for k in range(50)] != [b.home(k) for k in range(50)]


class TestKeyValueStore:
    def test_build_validates(self):
        with pytest.raises(ValueError, match="placement"):
            KeyValueStore.build(4, 100, placement="bogus")

    def test_machine_popularity_aggregates_keys(self):
        """Induced P(E_j) = sum of key weights homed on M_j."""
        store = KeyValueStore.build(4, 50, k=2, placement="block", key_zipf_s=1.0)
        pop = store.machine_popularity()
        homes = store.homes()
        expected = np.zeros(4)
        for key in range(50):
            expected[homes[key] - 1] += store.key_weights[key]
        assert np.allclose(pop, expected)
        assert pop.sum() == pytest.approx(1.0)

    def test_replica_set_uses_strategy(self):
        store = KeyValueStore.build(6, 10, k=3, strategy="overlapping", placement="block")
        key = 2  # homed on machine 3 under block placement
        assert store.replica_set(key) == {3, 4, 5}

    def test_request_stream_schedulable(self):
        store = KeyValueStore.build(6, 200, k=3, strategy="overlapping", key_zipf_s=0.8)
        inst = store.request_stream(lam=3.0, n=300, rng=0)
        assert inst.n == 300
        sched = eft_schedule(inst, tiebreak="min")
        sched.validate()

    def test_request_stream_keys_recorded(self):
        store = KeyValueStore.build(4, 20, k=2, placement="block")
        inst = store.request_stream(lam=1.0, n=50, rng=1)
        for t in inst:
            assert t.key is not None
            assert t.machines == store.replica_set(t.key)

    def test_uniform_keys_default(self):
        store = KeyValueStore.build(4, 10)
        assert np.allclose(store.key_weights, 0.1)

    def test_zipf_keys_skewed(self):
        store = KeyValueStore.build(4, 10, key_zipf_s=2.0)
        assert store.key_weights[0] > store.key_weights[-1]
