"""Deterministic preemption support in the reference engine.

The PREEMPT/RESUME machinery exists for the zoo's preemptive policies
(SRPT-PS): one coalesced re-evaluation per machine per instant, strict
inequality to preempt, machine-local residuals, exact busy-time
accounting, and fault interplay (lost progress lands in
``wasted_work``)."""

import pytest

from repro.core import EFT, Instance, Task
from repro.faults import FaultSchedule
from repro.obs import SimRecorder
from repro.schedulers import SRPTPS
from repro.simulation import Simulator


def _inst(m, specs):
    """specs: (tid, release, proc[, machines])"""
    tasks = tuple(
        Task(
            tid=s[0],
            release=float(s[1]),
            proc=float(s[2]),
            machines=frozenset(s[3]) if len(s) > 3 else None,
        )
        for s in specs
    )
    return Instance(m=m, tasks=tasks)


class TestBasicPreemption:
    def test_short_task_preempts_long_one(self):
        # A (proc 5) starts at 0; B (proc 1) lands at 1 and wins
        # (remaining 1 < 4): B runs 1..2, A resumes 2..6.
        inst = _inst(1, [(0, 0, 5), (1, 1, 1)])
        sim = Simulator(SRPTPS(1))
        sim.add_instance(inst)
        res = sim.run()
        assert res.n_preempted == 1
        assert sim.completions == {0: 6.0, 1: 2.0}
        assert sim.starts == {0: 0.0, 1: 1.0}  # first starts only
        assert res.mean_flow == pytest.approx((6.0 + 1.0) / 2)
        assert res.max_flow == 6.0
        # per-machine busy time nets to total service despite the split stint
        assert sim.machines[1].busy_time == pytest.approx(6.0)

    def test_equal_remaining_does_not_preempt(self):
        # At t=1, A's remaining (1) equals B's (1): strict inequality
        # required, so no preemption and FIFO order stands.
        inst = _inst(1, [(0, 0, 2), (1, 1, 1)])
        sim = Simulator(SRPTPS(1))
        sim.add_instance(inst)
        res = sim.run()
        assert res.n_preempted == 0
        assert sim.completions == {0: 2.0, 1: 3.0}

    def test_same_instant_batch_coalesces_to_one_check(self):
        # Three tasks land at t=1 on the busy machine; the single
        # PREEMPT check (after the whole batch) switches to the batch's
        # best, and SRPT order drains the rest.
        inst = _inst(1, [(0, 0, 10), (1, 1, 3), (2, 1, 1), (3, 1, 2)])
        sim = Simulator(SRPTPS(1))
        sim.add_instance(inst)
        res = sim.run()
        # Only the running task was preempted (once): the queue swaps
        # are ordinary starts.
        assert res.n_preempted == 1
        # SRPT at t=1: remainders are A=9, B=3, C=1, D=2 -> C, D, B, A
        assert sim.completions == {2: 2.0, 3: 4.0, 1: 7.0, 0: 16.0}

    def test_non_preemptive_policies_never_preempt(self):
        inst = _inst(2, [(0, 0, 4), (1, 1, 1), (2, 1, 2)])
        sim = Simulator(EFT(2, tiebreak="min"))
        sim.add_instance(inst)
        res = sim.run()
        assert res.n_preempted == 0

    def test_srpt_beats_eft_mean_flow_here(self):
        inst = _inst(1, [(0, 0, 8), (1, 1, 1), (2, 2, 1)])
        flows = []
        for sched in (SRPTPS(1), EFT(1, tiebreak="min")):
            sim = Simulator(sched)
            sim.add_instance(inst)
            flows.append(sim.run().mean_flow)
        srpt_flow, eft_flow = flows
        assert srpt_flow < eft_flow

    def test_dispatch_matches_eft_min(self):
        """SRPT-PS binds tasks to machines exactly as EFT-Min does —
        preemption only reorders within a machine."""
        inst = _inst(
            3,
            [
                (0, 0, 3, {1, 2}),
                (1, 0, 1, {2, 3}),
                (2, 1, 4, {1, 3}),
                (3, 1.5, 2, {1, 2, 3}),
                (4, 2, 1, {1}),
            ],
        )
        srpt = Simulator(SRPTPS(3))
        srpt.add_instance(inst)
        srpt.run()
        eft = Simulator(EFT(3, tiebreak="min"))
        eft.add_instance(inst)
        eft.run()
        assert srpt.assigned_machine == eft.assigned_machine
        # analytic books stay exact: per-machine completion horizons agree
        assert srpt.scheduler.completions == eft.scheduler.completions


class TestContractEnforcement:
    def test_preemptive_without_key_is_type_error(self):
        class Broken(EFT):
            preemptive = True

        with pytest.raises(TypeError, match="preempt_key"):
            Simulator(Broken(2))


class TestObservability:
    def test_preempt_counters_in_recorder(self):
        inst = _inst(1, [(0, 0, 5), (1, 1, 1)])
        obs = SimRecorder()
        sim = Simulator(SRPTPS(1), obs=obs)
        sim.add_instance(inst)
        res = sim.run()
        assert res.n_preempted == 1
        assert obs.registry.counter("tasks_preempted").value == 1
        # the preempted task came back: one resume-start (not a fresh start)
        assert obs.registry.counter("preempt_resumes").value == 1
        assert obs.registry.counter("tasks_started").value == 2

    def test_non_preemptive_snapshot_has_no_preempt_keys(self):
        from repro.obs.snapshot import metrics_snapshot, metrics_to_json

        inst = _inst(2, [(0, 0, 2), (1, 0.5, 1)])
        obs = SimRecorder()
        sim = Simulator(EFT(2), obs=obs)
        sim.add_instance(inst)
        sim.run()
        text = metrics_to_json(metrics_snapshot(obs.registry))
        assert "preempt" not in text


class TestFaultInterplay:
    def test_restart_loses_preempted_stint_too(self):
        # A runs 0..1 (preempted, 1 credited), B runs 1..2, A resumes
        # 2..; machine 1 dies at 3 (A has 1 new unit done).  RESTART
        # wastes both stints: 1 (credited) + 1 (current) = 2.
        inst = _inst(1, [(0, 0, 5), (1, 1, 1)])
        sim = Simulator(
            SRPTPS(1),
            faults=FaultSchedule.build([(1, 3.0, 4.0)]),
            fault_policy="restart",
        )
        sim.add_instance(inst)
        res = sim.run()
        assert res.n_preempted == 1
        assert res.wasted_work == pytest.approx(2.0)
        # A restarts from scratch at recovery: 4 + 5
        assert sim.completions[0] == pytest.approx(9.0)
        assert sim.completions[1] == pytest.approx(2.0)

    def test_queued_preempted_task_displaced_by_failure(self):
        # A preempted and *queued* (not running) when its machine dies:
        # the residual cannot migrate, so its credited progress is
        # wasted and it restarts elsewhere from scratch.
        inst = _inst(
            2,
            [
                (0, 0, 5, {1, 2}),  # A -> machine 1 (tie set {1,2}, min)
                (1, 1, 1, {1, 2}),  # B -> machine 1 (finish 6 < 11), preempts A
                (2, 0, 10, {2}),    # X keeps machine 2 busy until 10
            ],
        )
        # At t=1: A preempted (credited 1, remaining 4), B runs 1..1.5.
        # Machine 1 dies at 1.5: B (running) restarts, A (queued,
        # preempted) is displaced — both with total progress lost,
        # both re-dispatched to machine 2.
        sim = Simulator(
            SRPTPS(2),
            faults=FaultSchedule.build([(1, 1.5, 30.0)]),
            fault_policy="restart",
        )
        sim.add_instance(inst)
        res = sim.run()
        assert res.n_preempted == 1
        # B's 0.5 running + A's 1.0 credited stint are both wasted
        assert res.wasted_work == pytest.approx(1.5)
        assert res.n_requeued == 2
        assert sim.assigned_machine[0] == 2
        assert sim.assigned_machine[1] == 2
        # behind X (done at 10), SRPT order restarts B then A from scratch
        assert sim.completions == {2: 10.0, 1: 11.0, 0: 16.0}

    def test_flows_use_engine_completions_under_preemption(self):
        # result() must not reconstruct flows from start+proc on a
        # preemptive run (starts record *first* starts).
        inst = _inst(1, [(0, 0, 5), (1, 1, 1)])
        sim = Simulator(SRPTPS(1))
        sim.add_instance(inst)
        res = sim.run()
        # start+proc would claim A finished at 5; it finished at 6.
        assert res.max_flow == 6.0
        assert res.makespan == 6.0
        assert res.utilization == pytest.approx(1.0)
