"""Truncated-run semantics of ``Simulator.run(until=...)``.

The accounting rules fixed by the obs PR: utilisation never exceeds 1
(busy time is credited at completion, the running task pro-rated), the
clock advances to the cutoff, pending tasks contribute their age to
the flow bounds, and — the central property — a run truncated at
``until`` agrees with the prefix of the untruncated run (completions,
starts, sampled obs series) for random instances and both tie-breaks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EFT, Task
from repro.obs import SimRecorder
from repro.simulation import Simulator
from tests.conftest import unrestricted_instances


def _sim(m, tiebreak, obs=None):
    return Simulator(EFT(m, tiebreak=tiebreak), obs=obs)


class TestUtilizationBounded:
    def test_pro_rated_in_flight_work(self):
        # m=1: task 0 (proc 1) completes at 1, task 1 (proc 10) starts
        # at 1 and is cut mid-flight at 1.5.  Before the fix the full
        # 10 units were credited at start, making utilisation 11/1.5.
        sim = _sim(1, "min")
        sim.add_tasks([Task(tid=0, release=0, proc=1), Task(tid=1, release=0, proc=10)])
        result = sim.run(until=1.5)
        assert result.utilization == pytest.approx(1.0)

    def test_idle_tail_counts_against_utilization(self):
        # Work ends at 1 but the window extends to 4: 1 busy unit over
        # a 4-unit horizon.
        sim = _sim(1, "min")
        sim.add_tasks([Task(tid=0, release=0, proc=1), Task(tid=1, release=10, proc=1)])
        result = sim.run(until=4.0)
        assert result.utilization == pytest.approx(0.25)

    def test_full_run_unchanged(self):
        sim = _sim(2, "min")
        sim.add_tasks([Task(tid=0, release=0, proc=2), Task(tid=1, release=0, proc=2)])
        assert sim.run().utilization == pytest.approx(1.0)

    @given(unrestricted_instances(), st.floats(0.1, 30.0), st.sampled_from(["min", "max"]))
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_one(self, inst, until, tiebreak):
        sim = _sim(inst.m, tiebreak)
        sim.add_instance(inst)
        result = sim.run(until=until)
        assert result.utilization <= 1.0 + 1e-9


class TestClockAdvancesToCutoff:
    def test_now_reaches_until(self):
        sim = _sim(1, "min")
        sim.add_tasks([Task(tid=0, release=0, proc=1)])
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_waiting_profile_at_cutoff(self):
        # Task completes at 2; by the cutoff at 5 nothing is waiting.
        # Before the fix `now` stuck at 2, and a task released at 4
        # with 3 remaining at the cutoff showed its full residual.
        sim = _sim(1, "min")
        sim.add_tasks([Task(tid=0, release=0, proc=2), Task(tid=1, release=4, proc=4)])
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.waiting_profile() == [pytest.approx(3.0)]

    def test_resume_after_truncation(self):
        sim = _sim(1, "min")
        sim.add_tasks([Task(tid=t, release=0, proc=2) for t in range(3)])
        first = sim.run(until=3.0)
        assert first.n_completed == 1
        final = sim.run()
        assert final.n_completed == 3
        assert final.n_pending == 0


class TestPendingFlowBounds:
    def test_pending_age_in_flows(self):
        # m=1, procs 1/4/4 at release 0, cut at 3: task 0 flowed 1,
        # task 1 runs to 5 (flow 5, determined), task 2 is pending with
        # age 3.  Before the fix task 2 was silently dropped.
        sim = _sim(1, "min")
        sim.add_tasks([Task(tid=t, release=0, proc=p) for t, p in enumerate((1, 4, 4))])
        result = sim.run(until=3.0)
        assert result.n_pending == 1
        assert result.max_flow == pytest.approx(5.0)
        assert result.mean_flow == pytest.approx((1.0 + 5.0 + 3.0) / 3)

    def test_pending_only_run(self):
        # Released at 0 and 1, nothing ever starts (cut at a release
        # instant is impossible — starts fire at release — so park the
        # tasks on a machine busy past the horizon).
        sim = _sim(1, "min")
        sim.add_tasks([Task(tid=0, release=0, proc=100), Task(tid=1, release=1, proc=1)])
        result = sim.run(until=10.0)
        assert result.n_pending == 1
        # in-flight task: flow 100 (determined); pending task: age 9.
        assert result.max_flow == pytest.approx(100.0)
        assert result.mean_flow == pytest.approx((100.0 + 9.0) / 2)

    def test_full_run_flows_unchanged(self):
        sim = _sim(1, "min")
        sim.add_tasks([Task(tid=0, release=0, proc=1), Task(tid=1, release=0, proc=1)])
        result = sim.run()
        assert result.n_pending == 0
        assert result.max_flow == pytest.approx(2.0)
        assert result.mean_flow == pytest.approx(1.5)


class TestTruncationIsPrefix:
    """A truncated run equals the prefix of the untruncated run."""

    @given(
        unrestricted_instances(),
        st.floats(0.0, 30.0),
        st.sampled_from(["min", "max"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_events_agree_with_prefix(self, inst, until, tiebreak):
        full = _sim(inst.m, tiebreak)
        full.add_instance(inst)
        full.run()

        trunc = _sim(inst.m, tiebreak)
        trunc.add_instance(inst)
        trunc.run(until=until)

        assert trunc.completions == {
            tid: c for tid, c in full.completions.items() if c <= until
        }
        assert trunc.starts == {tid: s for tid, s in full.starts.items() if s <= until}
        for tid in trunc.starts:
            assert trunc.assigned_machine[tid] == full.assigned_machine[tid]

    @given(
        unrestricted_instances(max_m=4, max_n=15),
        st.floats(0.5, 20.0),
        st.sampled_from(["min", "max"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_obs_series_agree_with_prefix(self, inst, until, tiebreak):
        """Sampled obs time series of the truncated run are exactly the
        prefix (times <= until) of the untruncated run's series."""
        horizon = 25.0
        full_obs, trunc_obs = SimRecorder(), SimRecorder()
        full = _sim(inst.m, tiebreak, obs=full_obs)
        full.add_instance(inst)
        full_obs.install(full, horizon=horizon, period=1.0)
        full.run()

        trunc = _sim(inst.m, tiebreak, obs=trunc_obs)
        trunc.add_instance(inst)
        trunc_obs.install(trunc, horizon=horizon, period=1.0)
        trunc.run(until=until)

        for name in ("queue_len_total", "waiting_work_total"):
            if name not in trunc_obs.registry:
                continue
            t_series = trunc_obs.registry.series(name)
            f_series = full_obs.registry.series(name)
            n = len(t_series)
            assert all(t <= until for t in t_series.times)
            assert t_series.times == f_series.times[:n]
            assert t_series.values == f_series.values[:n]
