"""Unit tests for the Zipf popularity model (Section 7.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    MachinePopularity,
    generalized_harmonic,
    shuffled_case,
    uniform_case,
    worst_case,
    zipf_weights,
)


class TestZipfWeights:
    def test_formula(self):
        """P(E_j) = 1 / (j^s * H_{m,s})."""
        m, s = 6, 1.5
        w = zipf_weights(m, s)
        h = generalized_harmonic(m, s)
        for j in range(1, m + 1):
            assert w[j - 1] == pytest.approx(1.0 / (j**s * h))

    def test_s_zero_uniform(self):
        assert np.allclose(zipf_weights(5, 0.0), 0.2)

    def test_monotone_decreasing(self):
        w = zipf_weights(10, 1.0)
        assert np.all(np.diff(w) < 0)

    def test_negative_s_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(5, -0.5)

    @given(st.integers(1, 50), st.floats(0, 5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_sums_to_one(self, m, s):
        assert zipf_weights(m, s).sum() == pytest.approx(1.0)

    def test_bias_grows_with_s(self):
        """Larger s concentrates more mass on machine 1."""
        tops = [zipf_weights(10, s)[0] for s in (0.0, 0.5, 1.0, 2.0)]
        assert tops == sorted(tops)


class TestCases:
    def test_uniform(self):
        pop = uniform_case(6)
        assert pop.case == "uniform"
        assert np.allclose(pop.weights, 1 / 6)

    def test_worst_sorted(self):
        pop = worst_case(6, 1.0)
        assert np.all(np.diff(pop.weights) < 0)

    def test_shuffled_is_permutation(self):
        pop = shuffled_case(6, 1.0, rng=0)
        assert sorted(pop.weights) == pytest.approx(sorted(worst_case(6, 1.0).weights))

    def test_shuffled_deterministic_by_seed(self):
        a = shuffled_case(6, 1.0, rng=5)
        b = shuffled_case(6, 1.0, rng=5)
        assert np.allclose(a.weights, b.weights)

    def test_figure8_worst_values(self):
        """Figure 8b: for m=6, s=1, lambda=m the first machine's load
        is ~2.449."""
        loads = worst_case(6, 1.0).machine_loads(6.0)
        assert loads[0] == pytest.approx(2.449, abs=1e-3)
        assert loads[-1] == pytest.approx(0.408, abs=1e-3)


class TestMachinePopularity:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachinePopularity(weights=np.array([0.5, 0.4]), case="x", s=0)
        with pytest.raises(ValueError):
            MachinePopularity(weights=np.array([-0.5, 1.5]), case="x", s=0)

    def test_max_load_unreplicated(self):
        """lambda <= 1 / max_j P(E_j) (Section 7.2)."""
        pop = worst_case(4, 1.0)
        assert pop.max_load_unreplicated() == pytest.approx(1.0 / pop.weights.max())

    def test_sample_homes_distribution(self):
        pop = worst_case(4, 2.0)
        rng = np.random.default_rng(0)
        homes = pop.sample_homes(20_000, rng)
        freq = np.bincount(homes, minlength=5)[1:] / 20_000
        assert np.allclose(freq, pop.weights, atol=0.02)

    def test_sample_range(self):
        pop = uniform_case(3)
        homes = pop.sample_homes(100, np.random.default_rng(1))
        assert set(np.unique(homes)) <= {1, 2, 3}
