"""Tests for variable service sizes and outage injection."""

import numpy as np
import pytest

from repro.core import eft_schedule
from repro.simulation import WorkloadSpec, generate_workload, inject_outage, sample_sizes


class TestSampleSizes:
    @pytest.mark.parametrize("dist", ["unit", "exp", "pareto", "uniform"])
    def test_mean_approximately_right(self, dist):
        rng = np.random.default_rng(0)
        sizes = sample_sizes(dist, 60_000, mean=2.0, rng=rng)
        assert sizes.mean() == pytest.approx(2.0, rel=0.1)
        assert np.all(sizes > 0)

    def test_unit_is_deterministic(self):
        rng = np.random.default_rng(0)
        assert np.all(sample_sizes("unit", 10, 1.5, rng) == 1.5)

    def test_pareto_is_heavy_tailed(self):
        rng = np.random.default_rng(1)
        pareto = sample_sizes("pareto", 50_000, 1.0, rng)
        exp = sample_sizes("exp", 50_000, 1.0, rng)
        # the 99.9th percentile of the Pareto dwarfs the exponential's
        assert np.percentile(pareto, 99.9) > np.percentile(exp, 99.9)

    def test_unknown_dist(self):
        with pytest.raises(ValueError, match="unknown size"):
            sample_sizes("weibull", 5, 1.0, np.random.default_rng(0))

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            sample_sizes("unit", 5, 0.0, np.random.default_rng(0))


class TestWorkloadSizes:
    def test_spec_threads_distribution(self):
        spec = WorkloadSpec(m=4, n=200, lam=2.0, k=2, size_dist="exp")
        inst = generate_workload(spec, rng=0)
        procs = np.array([t.proc for t in inst])
        assert procs.std() > 0  # genuinely variable

    def test_default_stays_unit(self):
        spec = WorkloadSpec(m=4, n=50, lam=2.0)
        inst = generate_workload(spec, rng=0)
        assert all(t.proc == 1.0 for t in inst)

    def test_variable_sizes_schedulable(self):
        spec = WorkloadSpec(m=6, n=300, lam=3.0, k=3, size_dist="pareto")
        inst = generate_workload(spec, rng=2)
        eft_schedule(inst, tiebreak="min").validate()


class TestOutageInjection:
    def test_outage_occupies_machine(self):
        spec = WorkloadSpec(m=3, n=30, lam=1.0)
        inst = generate_workload(spec, rng=0)
        out = inject_outage(inst, machine=2, start=0.0, duration=50.0)
        sched = eft_schedule(out, tiebreak="min")
        sched.validate()
        outage_tid = max(t.tid for t in out)
        assert sched.machine_of(outage_tid) == 2
        # while machine 2 is down, no other task runs on it
        window = [
            a
            for a in sched.on_machine(2)
            if a.task.tid != outage_tid and a.start < sched.completion_of(outage_tid)
        ]
        assert all(a.completion <= sched.start_of(outage_tid) + 1e-9 for a in window)

    def test_outage_degrades_fmax(self):
        spec = WorkloadSpec(m=3, n=600, lam=0.8 * 3, k=2, strategy="overlapping")
        inst = generate_workload(spec, rng=5)
        base = eft_schedule(inst, tiebreak="min").max_flow
        degraded = eft_schedule(
            inject_outage(inst, machine=1, start=5.0, duration=100.0), tiebreak="min"
        ).max_flow
        assert degraded >= base

    def test_validation(self):
        spec = WorkloadSpec(m=2, n=5, lam=1.0, k=2)
        inst = generate_workload(spec, rng=0)
        with pytest.raises(ValueError):
            inject_outage(inst, machine=5, start=0, duration=1)
        with pytest.raises(ValueError):
            inject_outage(inst, machine=1, start=0, duration=0)

    def test_tid_continuation(self):
        spec = WorkloadSpec(m=2, n=5, lam=1.0, k=2)
        inst = generate_workload(spec, rng=0)
        out = inject_outage(inst, machine=1, start=0, duration=1)
        assert max(t.tid for t in out) == 5
        assert out.n == 6
