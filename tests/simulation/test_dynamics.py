"""Dynamic workload generators: properties and degenerate reductions.

The contract of :mod:`repro.simulation.dynamics`:

* arrival streams are strictly increasing in time, with positive and
  finite service times, and identical for identical seeds;
* every profile with zero "amplitude" reduces *bit-for-bit* to the
  static generator it generalises — not just in distribution;
* specs round-trip through their dict serialisation (rebalance traces
  replay from their own bytes).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    ConstantRate,
    DiurnalRate,
    DynamicWorkloadSpec,
    FlashCrowd,
    HotspotShift,
    StaticPopularity,
    WorkloadSpec,
    ZipfDrift,
    arrival_times,
    generate_dynamic_workload,
    generate_workload,
    poisson_release_times,
    profile_from_dict,
    profile_to_dict,
    worst_case,
)

rates = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def rate_profiles(draw):
    kind = draw(st.sampled_from(["constant", "diurnal", "flash"]))
    base = draw(rates)
    if kind == "constant":
        return ConstantRate(base)
    if kind == "diurnal":
        return DiurnalRate(
            base=base,
            amplitude=draw(st.floats(min_value=0.0, max_value=1.0)),
            period=draw(st.floats(min_value=1.0, max_value=200.0)),
            phase=draw(st.floats(min_value=0.0, max_value=50.0)),
        )
    return FlashCrowd(
        base=base,
        peak=draw(rates),
        start=draw(st.floats(min_value=0.0, max_value=100.0)),
        duration=draw(st.floats(min_value=0.5, max_value=100.0)),
    )


@st.composite
def popularity_profiles(draw, m: int = 6):
    kind = draw(st.sampled_from(["static", "zipf-drift", "hotspot-shift"]))
    s = draw(st.floats(min_value=0.0, max_value=4.0))
    if kind == "static":
        return StaticPopularity(worst_case(m, s))
    if kind == "zipf-drift":
        t0 = draw(st.floats(min_value=0.0, max_value=50.0))
        return ZipfDrift(
            m=m,
            s0=s,
            s1=draw(st.floats(min_value=0.0, max_value=4.0)),
            t0=t0,
            t1=t0 + draw(st.floats(min_value=0.0, max_value=50.0)),
        )
    n_shifts = draw(st.integers(min_value=0, max_value=3))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0),
                min_size=n_shifts,
                max_size=n_shifts,
            )
        )
    )
    rots = draw(
        st.lists(st.integers(min_value=0, max_value=m), min_size=n_shifts, max_size=n_shifts)
    )
    return HotspotShift(m=m, s=s, shifts=tuple(zip(times, rots)))


class TestArrivalProperties:
    @given(profile=rate_profiles(), seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_monotone_nonnegative(self, profile, seed):
        times = arrival_times(profile, 50, rng=seed)
        assert times.size == 50
        assert np.all(np.isfinite(times))
        assert times[0] >= 0.0
        assert np.all(np.diff(times) >= 0)
        # Strictly increasing in the generic case (ties only possible
        # through float rounding of the inverse, never exact for a
        # continuous-rate profile).
        assert np.all(np.diff(times) > 0) or not profile.is_constant

    @given(profile=rate_profiles(), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_seed_determinism(self, profile, seed):
        a = arrival_times(profile, 30, rng=seed)
        b = arrival_times(profile, 30, rng=seed)
        assert np.array_equal(a, b)

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_zero_amplitude_is_bitwise_constant(self, seed):
        """DiurnalRate(amplitude=0) is not just ~ConstantRate — the
        stream is the exact same numpy draw sequence."""
        flat = DiurnalRate(base=3.0, amplitude=0.0, period=24.0)
        assert flat.is_constant
        assert np.array_equal(
            arrival_times(flat, 40, rng=seed),
            poisson_release_times(3.0, 40, rng=seed),
        )

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_flat_flash_crowd_is_bitwise_constant(self, seed):
        flat = FlashCrowd(base=2.0, peak=2.0, start=10.0, duration=5.0)
        assert flat.is_constant
        assert np.array_equal(
            arrival_times(flat, 40, rng=seed),
            poisson_release_times(2.0, 40, rng=seed),
        )

    def test_inversion_matches_cumulative(self):
        """Lambda(Lambda^-1(u)) == u on every profile, including the
        bisection fallback."""
        profiles = [
            ConstantRate(2.0),
            DiurnalRate(base=3.0, amplitude=0.7, period=20.0, phase=2.0),
            FlashCrowd(base=1.0, peak=9.0, start=5.0, duration=3.0),
        ]
        for profile in profiles:
            for u in (0.5, 3.0, 17.0, 123.0):
                t = profile.inverse_cumulative(u)
                assert profile.cumulative(t) == pytest.approx(u, rel=1e-9, abs=1e-7)

    def test_diurnal_modulates_density(self):
        """More arrivals land in the high-rate half of the period."""
        profile = DiurnalRate(base=5.0, amplitude=0.9, period=100.0)
        times = arrival_times(profile, 4000, rng=0)
        in_peak = np.sum((times % 100.0) < 50.0)  # sin>0 half
        assert in_peak > 0.6 * 4000

    def test_flash_crowd_bursts(self):
        profile = FlashCrowd(base=1.0, peak=50.0, start=10.0, duration=2.0)
        times = arrival_times(profile, 500, rng=0)
        burst = np.sum((times >= 10.0) & (times < 12.0))
        assert burst > 50  # ~100 expected in the window vs ~2 outside


class TestPopularityProfiles:
    @given(profile=popularity_profiles(), seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_weights_are_probability_vectors(self, profile, seed):
        for t in (0.0, 10.0, 55.0, 1000.0):
            w = profile.weights(t)
            assert w.shape == (profile.m,)
            assert np.all(w >= 0)
            assert w.sum() == pytest.approx(1.0)

    @given(profile=popularity_profiles(), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_homes_in_range_and_deterministic(self, profile, seed):
        releases = np.linspace(0.0, 120.0, 64)
        a = profile.sample_homes(releases, np.random.default_rng(seed))
        b = profile.sample_homes(releases, np.random.default_rng(seed))
        assert np.array_equal(a, b)
        assert np.all((a >= 1) & (a <= profile.m))

    def test_static_profile_is_bitwise_machine_popularity(self):
        pop = worst_case(8, 1.2)
        releases = poisson_release_times(2.0, 100, rng=5)
        lifted = StaticPopularity(pop).sample_homes(releases, np.random.default_rng(9))
        direct = pop.sample_homes(100, np.random.default_rng(9))
        assert np.array_equal(lifted, direct)

    def test_zipf_drift_degenerates_when_flat(self):
        drift = ZipfDrift(m=6, s0=1.5, s1=1.5, t0=0.0, t1=100.0)
        assert drift.is_static
        assert np.array_equal(drift.weights(0.0), drift.weights(1e6))

    def test_zipf_drift_ramps(self):
        drift = ZipfDrift(m=6, s0=0.0, s1=3.0, t0=10.0, t1=20.0)
        assert drift.exponent(0.0) == 0.0
        assert drift.exponent(15.0) == pytest.approx(1.5)
        assert drift.exponent(100.0) == 3.0
        # Sharper exponent concentrates weight on machine 1.
        assert drift.weights(100.0)[0] > drift.weights(0.0)[0]

    def test_hotspot_shift_rotates(self):
        shift = HotspotShift(m=6, s=2.0, shifts=((10.0, 2), (20.0, 1)))
        w0 = shift.weights(0.0)
        assert np.array_equal(shift.weights(15.0), np.roll(w0, 2))
        assert np.array_equal(shift.weights(25.0), np.roll(w0, 3))
        assert shift.rotation(9.999) == 0

    def test_full_ring_rotation_is_static(self):
        assert HotspotShift(m=6, s=2.0, shifts=((10.0, 6),)).is_static
        assert not HotspotShift(m=6, s=2.0, shifts=((10.0, 5),)).is_static

    def test_segment_sampling_shifts_mass(self):
        """After the shift, homes concentrate on the rotated hot set."""
        m = 8
        shift = HotspotShift(m=m, s=3.0, shifts=((50.0, 4),))
        releases = np.linspace(0.0, 100.0, 2000, endpoint=False)
        homes = shift.sample_homes(releases, np.random.default_rng(0))
        before = homes[releases < 50.0]
        after = homes[releases >= 50.0]
        # s=3 puts ~83% of the mass on rank 1: machine 1 before, 5 after.
        assert np.mean(before == 1) > 0.5
        assert np.mean(after == 5) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalRate(base=1.0, amplitude=1.5, period=10.0)
        with pytest.raises(ValueError):
            FlashCrowd(base=1.0, peak=2.0, start=-1.0, duration=5.0)
        with pytest.raises(ValueError):
            ZipfDrift(m=4, s0=1.0, s1=2.0, t0=10.0, t1=5.0)
        with pytest.raises(ValueError):
            HotspotShift(m=4, s=1.0, shifts=((10.0, 1), (5.0, 1)))
        with pytest.raises(ValueError):
            HotspotShift(m=4, s=1.0, order=(0, 0, 1, 2))


class TestDynamicWorkloadSpec:
    def _spec(self, **kw):
        defaults = dict(
            m=6,
            n=200,
            rate=ConstantRate(3.0),
            popularity=HotspotShift(m=6, s=1.5, shifts=((20.0, 3),)),
            k=2,
        )
        defaults.update(kw)
        return DynamicWorkloadSpec(**defaults)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_stream_properties(self, seed):
        stream = self._spec().stream(seed)
        assert stream.n == 200
        assert np.all(np.diff(stream.releases) >= 0)
        assert np.all(stream.sizes > 0)
        assert np.all(np.isfinite(stream.sizes))
        assert np.all((stream.homes >= 1) & (stream.homes <= 6))

    def test_fully_degenerate_spec_matches_static_generator(self):
        """Constant rate + static popularity reproduces the classic
        generate_workload stream task-for-task."""
        m, n, s = 6, 150, 1.3
        pop = worst_case(m, s)
        dyn = DynamicWorkloadSpec(
            m=m, n=n, rate=ConstantRate(2.5), popularity=StaticPopularity(pop), k=2
        )
        classic = generate_workload(
            WorkloadSpec(m=m, n=n, lam=2.5, k=2), rng=7, popularity=pop
        )
        dynamic = generate_dynamic_workload(dyn, rng=7)
        assert dynamic.n == classic.n
        for a, b in zip(dynamic.tasks, classic.tasks):
            assert a.release == b.release
            assert a.proc == b.proc
            assert a.machines == b.machines

    def test_instance_carries_home_key(self):
        inst = generate_dynamic_workload(self._spec(), rng=0)
        strat = self._spec().replication()
        for task in inst.tasks:
            assert task.key is not None
            assert task.machines == strat.replicas(int(task.key))

    def test_average_load_time_averaged(self):
        # Constant-rate pin: the old closed form survives.
        spec = self._spec(rate=ConstantRate(3.0), proc=1.0)
        assert spec.average_load == pytest.approx(3.0 / 6.0)
        # A flash crowd raises the average rate over the window.
        crowded = self._spec(
            rate=FlashCrowd(base=3.0, peak=30.0, start=0.0, duration=10.0)
        )
        assert crowded.average_load > spec.average_load

    def test_round_trip(self):
        spec = self._spec(
            rate=DiurnalRate(base=4.0, amplitude=0.5, period=60.0, phase=3.0)
        )
        again = DynamicWorkloadSpec.from_dict(spec.to_dict())
        assert again == spec
        a = spec.stream(3)
        b = again.stream(3)
        assert np.array_equal(a.releases, b.releases)
        assert np.array_equal(a.homes, b.homes)
        assert np.array_equal(a.sizes, b.sizes)

    def test_mismatched_m_rejected(self):
        with pytest.raises(ValueError, match="m="):
            self._spec(m=8)

    def test_swapped_profile_kinds_rejected(self):
        doc = self._spec().to_dict()
        doc["rate"], doc["popularity"] = doc["popularity"], doc["rate"]
        with pytest.raises(ValueError):
            DynamicWorkloadSpec.from_dict(doc)


class TestProfileSerialisation:
    @given(profile=rate_profiles())
    @settings(max_examples=40, deadline=None)
    def test_rate_round_trip(self, profile):
        again = profile_from_dict(profile_to_dict(profile))
        assert again == profile

    @given(profile=popularity_profiles())
    @settings(max_examples=40, deadline=None)
    def test_popularity_round_trip(self, profile):
        again = profile_from_dict(profile_to_dict(profile))
        assert type(again) is type(profile)
        for t in (0.0, 42.0):
            assert np.allclose(again.weights(t), profile.weights(t))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown profile kind"):
            profile_from_dict({"kind": "sawtooth"})


class TestClassicSpecRateProfile:
    def test_rate_profile_feeds_generate_workload(self):
        spec = WorkloadSpec(
            m=6,
            n=100,
            lam=2.0,
            k=2,
            rate_profile=FlashCrowd(base=2.0, peak=20.0, start=5.0, duration=2.0),
        )
        inst = generate_workload(spec, rng=0)
        times = np.array([t.release for t in inst.tasks])
        burst = np.sum((times >= 5.0) & (times < 7.0))
        assert burst > 15

    def test_constant_profile_identical_to_lam(self):
        base = WorkloadSpec(m=6, n=100, lam=2.0, k=2)
        lifted = WorkloadSpec(m=6, n=100, lam=2.0, k=2, rate_profile=ConstantRate(2.0))
        a = generate_workload(base, rng=4)
        b = generate_workload(lifted, rng=4)
        for x, y in zip(a.tasks, b.tasks):
            assert x.release == y.release and x.machines == y.machines

    def test_average_load_pin(self):
        """The documented closed form lam*p/m — unchanged for constant
        rates (regression pin for the time-averaged fix)."""
        assert WorkloadSpec(m=10, n=50, lam=5.0).average_load == pytest.approx(0.5)
        assert WorkloadSpec(
            m=10, n=50, lam=5.0, rate_profile=ConstantRate(5.0)
        ).average_load == pytest.approx(0.5)
