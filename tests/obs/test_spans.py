"""Unit tests for wall-clock timing spans."""

import pytest

from repro.obs import SpanSet


class TestSpanSet:
    def test_span_records_duration(self):
        spans = SpanSet()
        with spans.span("work"):
            sum(range(1000))
        assert spans.seconds("work") > 0
        assert spans.count("work") == 1
        assert "work" in spans

    def test_spans_accumulate(self):
        spans = SpanSet()
        spans.add("x", 0.25)
        spans.add("x", 0.5)
        spans.add("y", 1.0)
        assert spans.seconds("x") == pytest.approx(0.75)
        assert spans.count("x") == 2
        assert len(spans) == 2

    def test_records_even_on_exception(self):
        spans = SpanSet()
        with pytest.raises(RuntimeError):
            with spans.span("boom"):
                raise RuntimeError("boom")
        assert spans.count("boom") == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SpanSet().add("x", -1.0)

    def test_as_dict_sorted_rounded(self):
        spans = SpanSet()
        spans.add("b", 0.123456789)
        spans.add("a", 1.0)
        out = spans.as_dict()
        assert list(out) == ["a", "b"]
        assert out["b"] == 0.123457

    def test_missing_name(self):
        spans = SpanSet()
        assert spans.seconds("nope") == 0.0
        assert spans.count("nope") == 0
