"""Snapshot serialisation, byte stability and schema validation."""

import json

import pytest

from repro.obs import (
    METRICS_FORMAT,
    METRICS_VERSION,
    MetricsRegistry,
    MetricsSchemaError,
    load_metrics,
    metrics_snapshot,
    metrics_to_json,
    validate_metrics,
    write_metrics,
)


def _registry():
    reg = MetricsRegistry()
    reg.counter("n").inc(3)
    reg.gauge("g").set(2.5)
    s = reg.series("s")
    s.observe(1.0, 0.5)
    s.observe(2.0, 0.25)
    reg.histogram("h", (0.0, 1.0)).observe_all([0.5, 1.5, -0.5])
    return reg


class TestSnapshot:
    def test_structure(self):
        snap = metrics_snapshot(_registry(), meta={"run": "x"})
        assert snap["format"] == METRICS_FORMAT
        assert snap["version"] == METRICS_VERSION
        assert snap["meta"] == {"run": "x"}
        validate_metrics(snap)

    def test_byte_stability(self):
        """Two registries fed the same observations render identically."""
        a = metrics_to_json(metrics_snapshot(_registry()))
        b = metrics_to_json(metrics_snapshot(_registry()))
        assert a == b
        assert a.endswith("\n")

    def test_write_load_roundtrip(self, tmp_path):
        path = write_metrics(_registry(), tmp_path / "sub" / "m.json", meta={"k": 1})
        data = load_metrics(path)
        assert data["meta"] == {"k": 1}
        assert data["metrics"]["counters"]["n"] == 3

    def test_numpy_values_serialise(self):
        np = pytest.importorskip("numpy")
        reg = MetricsRegistry()
        reg.gauge("g").set(np.float64(1.5))
        snap = metrics_snapshot(reg)
        assert json.loads(metrics_to_json(snap))["metrics"]["gauges"]["g"] == 1.5


class TestValidation:
    def _valid(self):
        return metrics_snapshot(_registry())

    def test_rejects_foreign_format(self):
        with pytest.raises(MetricsSchemaError, match="format"):
            validate_metrics({"format": "other", "version": 1, "metrics": {}})

    def test_rejects_bad_version(self):
        snap = self._valid()
        snap["version"] = 99
        with pytest.raises(MetricsSchemaError, match="version"):
            validate_metrics(snap)

    def test_rejects_negative_counter(self):
        snap = self._valid()
        snap["metrics"]["counters"]["n"] = -1
        with pytest.raises(MetricsSchemaError, match="counters.n"):
            validate_metrics(snap)

    def test_rejects_length_mismatch(self):
        snap = self._valid()
        snap["metrics"]["series"]["s"]["times"].append(9.0)
        with pytest.raises(MetricsSchemaError, match="lengths differ"):
            validate_metrics(snap)

    def test_rejects_inconsistent_histogram(self):
        snap = self._valid()
        snap["metrics"]["histograms"]["h"]["count"] = 99
        with pytest.raises(MetricsSchemaError, match="count"):
            validate_metrics(snap)

    def test_rejects_bad_bucket_shape(self):
        snap = self._valid()
        snap["metrics"]["histograms"]["h"]["counts"] = [1]
        with pytest.raises(MetricsSchemaError, match="buckets"):
            validate_metrics(snap)

    def test_rejects_unknown_section(self):
        snap = self._valid()
        snap["metrics"]["bogus"] = {}
        with pytest.raises(MetricsSchemaError, match="unknown sections"):
            validate_metrics(snap)

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-metrics", "version": 1, "metrics": []}')
        with pytest.raises(MetricsSchemaError):
            load_metrics(path)


class TestValidatorCli:
    def test_ok_and_invalid(self, tmp_path, capsys):
        from repro.obs.validate import main

        good = write_metrics(_registry(), tmp_path / "good.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out
        assert main([str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "INVALID" in captured.err
