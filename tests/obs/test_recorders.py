"""Unit tests for the metric recorder primitives."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries, linear_edges


class TestCounter:
    def test_inc(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("n").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(3)
        g.set(7.5)
        assert g.snapshot() == 7.5


class TestTimeSeries:
    def test_observe(self):
        s = TimeSeries("s")
        s.observe(1.0, 10)
        s.observe(2.0, 20)
        assert len(s) == 2
        assert s.last == 20.0
        assert s.snapshot() == {"times": [1.0, 2.0], "values": [10.0, 20.0]}

    def test_empty(self):
        assert TimeSeries("s").last is None


class TestLinearEdges:
    def test_even_spacing(self):
        assert linear_edges(0, 10, 5) == (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)

    def test_degenerate_range(self):
        assert linear_edges(3.0, 3.0) == (3.0,)

    def test_invalid(self):
        with pytest.raises(ValueError):
            linear_edges(0, 1, 0)


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        # underflow, [1,2), [2,4), overflow
        for v in (0.5, 1.0, 1.9, 2.0, 3.9, 4.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 2, 2, 2]
        assert h.count == 7
        assert h.vmin == 0.5 and h.vmax == 100.0
        assert h.mean == pytest.approx(sum((0.5, 1.0, 1.9, 2.0, 3.9, 4.0, 100.0)) / 7)

    def test_snapshot_consistent(self):
        h = Histogram("h", edges=(0.0, 1.0))
        h.observe_all([0.2, 0.8, 1.5])
        snap = h.snapshot()
        assert sum(snap["counts"]) == snap["count"] == 3
        assert len(snap["counts"]) == len(snap["edges"]) + 1

    def test_bad_edges(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Histogram("h", edges=(2.0, 1.0))
        with pytest.raises(ValueError, match="edge"):
            Histogram("h", edges=())


class TestMetricsRegistry:
    def test_idempotent_accessors(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", (1.0, 2.0)) is reg.histogram("h", (1.0, 2.0))

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_histogram_edge_clash_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0,))
        with pytest.raises(ValueError, match="different edges"):
            reg.histogram("h", (2.0,))

    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.series("s").observe(0.0, 1.0)
        reg.histogram("h", (0.0,)).observe(1.0)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "series", "histograms"}
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert "s" in snap["series"] and "h" in snap["histograms"]
        assert reg.names() == ["c", "g", "h", "s"]
