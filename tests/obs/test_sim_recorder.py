"""SimRecorder driven through real Simulator runs via the obs= hooks."""

import pytest

from repro.core import EFT, Instance, Task
from repro.obs import MetricsRegistry, SimRecorder
from repro.simulation import Simulator


def _run(tasks, m=1, obs="new", until=None, **recorder_kwargs):
    if obs == "new":
        obs = SimRecorder(**recorder_kwargs)
    sim = Simulator(EFT(m, tiebreak="min"), obs=obs)
    sim.add_tasks(tasks)
    result = sim.run(until=until)
    return obs, sim, result


class TestLifecycleCounters:
    def test_full_run_counts(self):
        obs, _, _ = _run([Task(tid=t, release=0, proc=1) for t in range(3)])
        assert obs.released.value == 3
        assert obs.started.value == 3
        assert obs.completed.value == 3

    def test_truncated_run_counts(self):
        # One machine, three unit tasks at 0: at until=1.5 one is done,
        # one is running, one was never started.
        obs, _, result = _run(
            [Task(tid=t, release=0, proc=1) for t in range(3)], until=1.5
        )
        assert obs.released.value == 3
        assert obs.started.value == 2
        assert obs.completed.value == 1
        assert result.n_pending == 1


class TestFlowHistogram:
    def test_flows_observed_at_completion(self):
        # m=1, unit tasks at 0: flows are 1, 2, 3.
        obs, _, _ = _run(
            [Task(tid=t, release=0, proc=1) for t in range(3)],
            flow_edges=(1.5, 2.5),
        )
        snap = obs.flow_hist.snapshot()
        assert snap["count"] == 3
        assert snap["counts"] == [1, 1, 1]  # 1 | 2 | 3
        assert snap["min"] == 1.0 and snap["max"] == 3.0


class TestInterStartGaps:
    def test_gaps_per_machine(self):
        # m=1, unit tasks: starts at 0, 1, 2 -> two gaps of 1.
        obs, _, _ = _run(
            [Task(tid=t, release=0, proc=1) for t in range(3)],
            gap_edges=(0.5, 1.5),
        )
        assert obs.gap_hist.count == 2
        assert obs.gap_hist.counts == [0, 2, 0]

    def test_gaps_do_not_mix_machines(self):
        # Two machines, one task each: no same-machine consecutive
        # starts, so no gaps at all.
        obs, _, _ = _run(
            [Task(tid=0, release=0, proc=1), Task(tid=1, release=0, proc=1)], m=2
        )
        assert obs.gap_hist.count == 0


class TestSampledSeries:
    def test_install_samples_queue_and_work(self):
        obs = SimRecorder()
        sim = Simulator(EFT(1), obs=obs)
        sim.add_tasks([Task(tid=t, release=0, proc=2) for t in range(3)])
        obs.install(sim, horizon=5.0, period=1.0)
        sim.run()
        q = obs.registry.series("queue_len[1]")
        assert q.times == [1.0, 2.0, 3.0, 4.0, 5.0]
        # at t=1: one running, two queued
        assert q.values[0] == 2.0
        w = obs.registry.series("waiting_work[1]")
        assert w.values[0] == pytest.approx(5.0)  # 1 residual + 4 queued
        assert obs.registry.series("queue_len_total").values == q.values

    def test_bad_period(self):
        obs = SimRecorder()
        with pytest.raises(ValueError):
            obs.install(Simulator(EFT(1)), horizon=1.0, period=0.0)


class TestSharedRegistry:
    def test_two_runs_merge(self):
        registry = MetricsRegistry()
        _run([Task(tid=0, release=0, proc=1)], obs=SimRecorder(registry))
        _run([Task(tid=0, release=0, proc=1)], obs=SimRecorder(registry))
        assert registry.counter("tasks_completed").value == 2


class TestResultUnaffected:
    def test_obs_does_not_change_schedule(self):
        tasks = [Task(tid=t, release=t % 2, proc=1.5) for t in range(4)]
        _, _, plain = _run(list(tasks), m=2, obs=None)
        _, _, observed = _run(list(tasks), m=2)
        assert plain.schedule.same_placements(observed.schedule)
        assert plain.max_flow == observed.max_flow
