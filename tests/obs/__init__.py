"""Tests for the repro.obs metrics/observability layer."""
