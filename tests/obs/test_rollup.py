"""Unit tests for fleet metric rollups (repro.obs.rollup)."""

import json

import pytest

from repro.obs import MetricsRegistry, rollup_registries, rollup_snapshots


def _registry(dispatched, depth, flows=()):
    reg = MetricsRegistry()
    reg.counter("dispatched_total").inc(dispatched)
    reg.gauge("queue_depth").set(depth)
    hist = reg.histogram("est_flow", (0.1, 1.0, 10.0))
    hist.observe_all(flows)
    return reg


class TestRollupSnapshots:
    def test_counters_and_gauges_sum(self):
        snap = rollup_snapshots(
            {"a": _registry(3, 2.0).snapshot(), "b": _registry(4, 1.5).snapshot()}
        )
        assert snap["counters"]["dispatched_total"] == 7
        assert snap["gauges"]["queue_depth"] == 3.5

    def test_members_prefixed(self):
        snap = rollup_snapshots(
            {"a": _registry(3, 2.0).snapshot(), "b": _registry(4, 1.5).snapshot()}
        )
        assert snap["counters"]["a/dispatched_total"] == 3
        assert snap["counters"]["b/dispatched_total"] == 4
        assert snap["gauges"]["a/queue_depth"] == 2.0

    def test_members_false_omits_prefixes(self):
        snap = rollup_snapshots(
            {"a": _registry(3, 2.0).snapshot(), "b": _registry(4, 1.5).snapshot()},
            members=False,
        )
        assert "a/dispatched_total" not in snap["counters"]
        assert snap["counters"]["dispatched_total"] == 7

    def test_histograms_merge_bucketwise(self):
        snap = rollup_snapshots(
            {
                "a": _registry(0, 0.0, flows=[0.05, 0.5]).snapshot(),
                "b": _registry(0, 0.0, flows=[5.0]).snapshot(),
            },
            members=False,
        )
        hist = snap["histograms"]["est_flow"]
        assert hist["count"] == 3
        assert hist["counts"] == [1, 1, 1, 0]
        assert hist["min"] == 0.05 and hist["max"] == 5.0
        assert hist["sum"] == pytest.approx(5.55)

    def test_histogram_edge_mismatch_is_an_error(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket edges"):
            rollup_snapshots({"a": a.snapshot(), "b": b.snapshot()})

    def test_series_concatenate_in_member_order(self):
        a = MetricsRegistry()
        a.series("load").observe(0.0, 1.0)
        b = MetricsRegistry()
        b.series("load").observe(0.5, 2.0)
        snap = rollup_snapshots({"b": b.snapshot(), "a": a.snapshot()}, members=False)
        assert snap["series"]["load"] == {"times": [0.0, 0.5], "values": [1.0, 2.0]}

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown metric sections"):
            rollup_snapshots({"a": {"bogus": {}}})

    def test_rollup_is_deterministic(self):
        members = {
            "shard0": _registry(3, 2.0, flows=[0.2]).snapshot(),
            "shard1": _registry(4, 1.5, flows=[2.0]).snapshot(),
        }
        one = json.dumps(rollup_snapshots(members), sort_keys=True)
        two = json.dumps(rollup_snapshots(dict(reversed(members.items()))), sort_keys=True)
        assert one == two


class TestRollupRegistries:
    def test_roundtrip_through_registry(self):
        members = {
            "shard0": _registry(3, 2.0, flows=[0.2]),
            "shard1": _registry(4, 1.5, flows=[2.0]),
        }
        fleet = rollup_registries(members)
        assert fleet.snapshot() == rollup_snapshots(
            {name: reg.snapshot() for name, reg in members.items()}
        )
