"""Deterministic campaign-level metrics from unit results."""

from repro.campaigns import CampaignSpec, Unit
from repro.obs import campaign_metrics, metrics_snapshot, metrics_to_json, numeric_leaves


def _spec(n=3):
    return CampaignSpec.build(
        "t",
        [Unit(kind="tests.campaigns.unit_kinds:square", params={"x": i}) for i in range(n)],
    )


class TestNumericLeaves:
    def test_nested_paths_sorted(self):
        obj = {"b": {"y": 2, "x": 1}, "a": 0.5, "skip": "str", "flag": True}
        assert list(numeric_leaves(obj)) == [("a", 0.5), ("b.x", 1.0), ("b.y", 2.0)]

    def test_lists_flatten_under_parent_key(self):
        assert list(numeric_leaves({"runs": [1, 2, 3]})) == [
            ("runs", 1.0),
            ("runs", 2.0),
            ("runs", 3.0),
        ]

    def test_bare_number(self):
        assert list(numeric_leaves(7)) == [("value", 7.0)]


class TestCampaignMetrics:
    def test_aggregates_per_field(self):
        spec = _spec()
        results = [{"y": float(i * i)} for i in range(3)]
        reg = campaign_metrics(spec, results)
        assert reg.counter("units").value == 3
        assert reg.counter("units_distinct").value == 3
        series = reg.series("unit/y")
        assert series.values == [0.0, 1.0, 4.0]
        assert reg["dist/y"].count == 3

    def test_snapshot_deterministic(self):
        spec = _spec()
        results = [{"y": [1.0, 2.0], "z": 3} for _ in range(3)]
        a = metrics_to_json(metrics_snapshot(campaign_metrics(spec, results)))
        b = metrics_to_json(metrics_snapshot(campaign_metrics(spec, list(results))))
        assert a == b

    def test_constant_field_degenerate_histogram(self):
        reg = campaign_metrics(_spec(2), [{"y": 5.0}, {"y": 5.0}])
        hist = reg["dist/y"]
        assert hist.edges == (5.0,)
        assert hist.count == 2
