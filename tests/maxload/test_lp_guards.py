"""Degenerate-popularity guards and the LRU-cached LP front-end."""

import numpy as np
import pytest

from repro.maxload import (
    DegeneratePopularityError,
    clear_solve_cache,
    max_load_lp,
    max_load_lp_cached,
    solve_cache_info,
)
from repro.psets.replication import get_strategy
from repro.rebalance import IntervalPlacement
from repro.simulation import uniform_case


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_solve_cache()
    yield
    clear_solve_cache()


class TestDegenerateGuards:
    @pytest.mark.parametrize(
        "bad",
        [
            [],
            [0.0, 0.0, 0.0],
            [0.5, -0.1, 0.6],
            [0.5, float("nan"), 0.5],
            [0.5, float("inf")],
            [0.2, 0.2],  # mass 0.4, not a distribution
            [[0.5, 0.5]],  # wrong rank
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(DegeneratePopularityError):
            max_load_lp(bad, "overlapping", k=2)

    def test_zero_mass_message(self):
        with pytest.raises(DegeneratePopularityError, match="zero mass"):
            max_load_lp([0.0, 0.0], "overlapping", k=1)

    def test_subclasses_value_error(self):
        """Existing `except ValueError` call sites keep working."""
        with pytest.raises(ValueError):
            max_load_lp([0.0, 0.0], "overlapping", k=1)

    def test_guard_applies_to_cached_too(self):
        with pytest.raises(DegeneratePopularityError):
            max_load_lp_cached([0.3, 0.3], "overlapping", k=2)
        assert solve_cache_info()["size"] == 0


class TestCache:
    def test_hit_returns_same_solution(self):
        pop = uniform_case(6)
        a = max_load_lp_cached(pop, "overlapping", k=2)
        b = max_load_lp_cached(pop, "overlapping", k=2)
        assert a is b
        info = solve_cache_info()
        assert info == {"size": 1, "hits": 1, "misses": 1}

    def test_cached_matches_uncached(self):
        w = np.array([0.4, 0.3, 0.2, 0.1])
        strat = get_strategy("overlapping", 4, 2)
        assert max_load_lp_cached(w, strat).lam == pytest.approx(max_load_lp(w, strat).lam)

    def test_distinct_popularity_misses(self):
        strat = get_strategy("overlapping", 4, 2)
        max_load_lp_cached(np.array([0.4, 0.3, 0.2, 0.1]), strat)
        max_load_lp_cached(np.array([0.1, 0.2, 0.3, 0.4]), strat)
        assert solve_cache_info()["misses"] == 2

    def test_equivalent_placements_share_entries(self):
        """A named ring and an IntervalPlacement with the same replica
        sets hit the same cache line."""
        strat = get_strategy("overlapping", 6, 2)
        placement = IntervalPlacement.from_strategy(strat)
        pop = uniform_case(6)
        max_load_lp_cached(pop, strat)
        max_load_lp_cached(pop, placement)
        assert solve_cache_info() == {"size": 1, "hits": 1, "misses": 1}

    def test_different_placements_do_not_collide(self):
        pop = uniform_case(6)
        placement = IntervalPlacement.from_strategy(get_strategy("overlapping", 6, 2))
        a = max_load_lp_cached(pop, placement)
        b = max_load_lp_cached(pop, placement.widen(1))
        assert solve_cache_info()["misses"] == 2
        assert b.lam >= a.lam - 1e-9

    def test_eviction_bounds_size(self):
        from repro.maxload.lp import _CACHE_MAX

        strat = get_strategy("overlapping", 4, 2)
        rng = np.random.default_rng(0)
        for _ in range(_CACHE_MAX + 10):
            w = rng.dirichlet(np.ones(4))
            max_load_lp_cached(w / w.sum(), strat)
        assert solve_cache_info()["size"] <= _CACHE_MAX

    def test_clear_resets(self):
        max_load_lp_cached(uniform_case(4), "overlapping", k=2)
        clear_solve_cache()
        assert solve_cache_info() == {"size": 0, "hits": 0, "misses": 0}

    def test_name_requires_k(self):
        with pytest.raises(ValueError, match="k required"):
            max_load_lp_cached(uniform_case(4), "overlapping")
