"""Tests for the Figure 10 sweep machinery."""

import numpy as np
import pytest

from repro.maxload import overlap_gain_ratio, sweep_max_load


@pytest.fixture(scope="module")
def small_sweep():
    return sweep_max_load(
        m=8,
        s_values=np.array([0.0, 1.0, 2.0]),
        k_values=np.array([1, 2, 4, 8]),
        n_permutations=10,
        rng=0,
    )


class TestSweep:
    def test_grid_shapes(self, small_sweep):
        assert small_sweep.loads["overlapping"].shape == (3, 4)
        assert small_sweep.loads["disjoint"].shape == (3, 4)

    def test_no_bias_row_is_100(self, small_sweep):
        assert np.allclose(small_sweep.loads["overlapping"][0], 100.0)
        assert np.allclose(small_sweep.loads["disjoint"][0], 100.0)

    def test_full_replication_column_is_100(self, small_sweep):
        assert np.allclose(small_sweep.loads["overlapping"][:, -1], 100.0)
        assert np.allclose(small_sweep.loads["disjoint"][:, -1], 100.0)

    def test_ratio_at_least_one(self, small_sweep):
        assert np.all(small_sweep.ratio() >= 1.0 - 1e-9)

    def test_gain_helper(self, small_sweep):
        assert overlap_gain_ratio(small_sweep) == pytest.approx(small_sweep.ratio().max())

    def test_loads_bounded_by_100(self, small_sweep):
        for grid in small_sweep.loads.values():
            assert np.all(grid <= 100.0 + 1e-6)

    def test_paper_peak_region(self):
        """At m=15 the gain peaks around 1.5 for mid-k, s near 1-1.25
        (Figure 10b)."""
        sweep = sweep_max_load(
            m=15,
            s_values=np.array([1.0, 1.25]),
            k_values=np.array([5, 6, 7]),
            n_permutations=30,
            rng=7,
        )
        peak = overlap_gain_ratio(sweep)
        assert 1.3 < peak < 1.7
