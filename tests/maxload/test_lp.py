"""Tests for the max-load LP (Equation 15) and its cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxload import (
    max_load_disjoint_closed_form,
    max_load_flow,
    max_load_hall,
    max_load_lp,
    max_load_percent,
)
from repro.psets import DisjointIntervals, OverlappingIntervals
from repro.simulation import shuffled_case, uniform_case, worst_case


class TestLPBasics:
    def test_uniform_full_replication(self):
        """k = m: everything reaches 100% regardless of bias."""
        sol = max_load_lp(worst_case(6, 2.0), "overlapping", 6)
        assert sol.load_percent == pytest.approx(100.0)

    def test_uniform_no_bias(self):
        """s = 0: both strategies reach 100% at any k (paper §7.3)."""
        for strat in ("overlapping", "disjoint"):
            for k in (1, 2, 3, 6):
                assert max_load_percent(uniform_case(6), strat, k) == pytest.approx(100.0)

    def test_k1_limited_by_hottest_machine(self):
        """No replication: lambda* = 1 / max_j P(E_j)."""
        pop = worst_case(5, 1.5)
        sol = max_load_lp(pop, "overlapping", 1)
        assert sol.lam == pytest.approx(1.0 / pop.weights.max())

    def test_transfer_matrix_constraints(self):
        """Optimal a_{ij} respects support, column sums and capacity."""
        pop = worst_case(6, 1.0)
        strat = OverlappingIntervals(6, 3)
        sol = max_load_lp(pop, strat)
        allowed = strat.transfer_matrix()
        assert np.all(sol.transfer[~allowed] <= 1e-8)
        assert np.allclose(sol.transfer.sum(axis=0), sol.lam * pop.weights, atol=1e-6)
        assert np.all(sol.transfer.sum(axis=1) <= 1 + 1e-8)

    def test_requires_k_with_name(self):
        with pytest.raises(ValueError, match="k required"):
            max_load_lp(uniform_case(4), "overlapping")

    def test_m_mismatch(self):
        with pytest.raises(ValueError, match="m="):
            max_load_lp(uniform_case(4), OverlappingIntervals(5, 2))

    def test_paper_headline_example(self):
        """§7.3: s=1, k=5, Shuffled — overlapping tolerates ~100%,
        disjoint ~70%."""
        pops = [shuffled_case(15, 1.0, rng=i) for i in range(30)]
        ov = np.median([max_load_percent(p, "overlapping", 5) for p in pops])
        dj = np.median([max_load_percent(p, "disjoint", 5) for p in pops])
        assert ov > 95.0
        assert 60.0 < dj < 78.0


class TestCrossChecks:
    @given(st.integers(2, 7), st.integers(1, 7), st.floats(0, 3, allow_nan=False), st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_lp_equals_hall(self, m, k, s, seed):
        k = min(k, m)
        pop = shuffled_case(m, s, rng=seed)
        for strat in ("overlapping", "disjoint"):
            lp = max_load_lp(pop, strat, k).lam
            hall = max_load_hall(pop, strat, k)
            assert lp == pytest.approx(hall, rel=1e-6, abs=1e-6)

    @given(st.integers(2, 6), st.integers(1, 6), st.floats(0, 2.5, allow_nan=False), st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_lp_equals_flow(self, m, k, s, seed):
        k = min(k, m)
        pop = shuffled_case(m, s, rng=seed)
        lp = max_load_lp(pop, "overlapping", k).lam
        flow = max_load_flow(pop, "overlapping", k)
        assert lp == pytest.approx(flow, abs=1e-5)

    @given(st.integers(2, 10), st.integers(1, 10), st.floats(0, 3, allow_nan=False), st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_disjoint_closed_form(self, m, k, s, seed):
        k = min(k, m)
        pop = shuffled_case(m, s, rng=seed)
        lp = max_load_lp(pop, "disjoint", k).lam
        closed = max_load_disjoint_closed_form(pop, k)
        assert lp == pytest.approx(closed, rel=1e-6)


class TestStructuralInvariants:
    @given(st.integers(3, 10), st.floats(0, 3, allow_nan=False), st.integers(0, 999))
    @settings(max_examples=25, deadline=None)
    def test_overlapping_dominates_disjoint(self, m, s, seed):
        """The paper's core finding: overlapping >= disjoint for every
        popularity and k."""
        pop = shuffled_case(m, s, rng=seed)
        for k in range(1, m + 1):
            ov = max_load_lp(pop, "overlapping", k).lam
            dj = max_load_lp(pop, "disjoint", k).lam
            # Relative slack: solver residuals scale with the optimum
            # (an absolute 1e-7 flakes on lam ~ m-sized values).
            assert ov >= dj - 1e-7 - 1e-6 * abs(dj)

    @given(st.integers(3, 8), st.floats(0, 3, allow_nan=False), st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_k_overlapping(self, m, s, seed):
        """More replication never hurts (supports only grow)."""
        pop = shuffled_case(m, s, rng=seed)
        vals = [max_load_lp(pop, "overlapping", k).lam for k in range(1, m + 1)]
        assert all(b >= a - 1e-7 - 1e-6 * abs(a) for a, b in zip(vals, vals[1:]))

    def test_equal_at_k_equals_m(self):
        pop = worst_case(8, 1.5)
        ov = max_load_lp(pop, "overlapping", 8).lam
        dj = max_load_lp(pop, "disjoint", 8).lam
        assert ov == pytest.approx(dj)

    def test_hall_guard(self):
        with pytest.raises(ValueError, match="m <= 20"):
            max_load_hall(np.ones(25) / 25, "overlapping", 3)
