"""Dinic max-flow vs networkx (property-based cross-check)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxload import Dinic


class TestDinicBasics:
    def test_single_edge(self):
        d = Dinic(2)
        d.add_edge(0, 1, 5.0)
        assert d.max_flow(0, 1) == 5.0

    def test_series_bottleneck(self):
        d = Dinic(3)
        d.add_edge(0, 1, 5.0)
        d.add_edge(1, 2, 3.0)
        assert d.max_flow(0, 2) == 3.0

    def test_parallel_paths(self):
        d = Dinic(4)
        d.add_edge(0, 1, 2.0)
        d.add_edge(0, 2, 2.0)
        d.add_edge(1, 3, 2.0)
        d.add_edge(2, 3, 2.0)
        assert d.max_flow(0, 3) == 4.0

    def test_classic_augmenting(self):
        """The textbook 4-node diamond with a cross edge."""
        d = Dinic(4)
        d.add_edge(0, 1, 1.0)
        d.add_edge(0, 2, 1.0)
        d.add_edge(1, 2, 1.0)
        d.add_edge(1, 3, 1.0)
        d.add_edge(2, 3, 1.0)
        assert d.max_flow(0, 3) == 2.0

    def test_disconnected(self):
        d = Dinic(3)
        d.add_edge(0, 1, 1.0)
        assert d.max_flow(0, 2) == 0.0

    def test_source_equals_sink(self):
        d = Dinic(2)
        with pytest.raises(ValueError):
            d.max_flow(0, 0)

    def test_negative_capacity_rejected(self):
        d = Dinic(2)
        with pytest.raises(ValueError):
            d.add_edge(0, 1, -1.0)


@st.composite
def flow_networks(draw):
    n = draw(st.integers(2, 8))
    n_edges = draw(st.integers(0, 20))
    edges = []
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        cap = draw(st.integers(0, 10))
        edges.append((u, v, float(cap)))
    return n, edges


@given(flow_networks())
@settings(max_examples=80, deadline=None)
def test_matches_networkx(network):
    n, edges = network
    d = Dinic(n)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for u, v, cap in edges:
        d.add_edge(u, v, cap)
        if g.has_edge(u, v):
            g[u][v]["capacity"] += cap
        else:
            g.add_edge(u, v, capacity=cap)
    ours = d.max_flow(0, n - 1)
    theirs = nx.maximum_flow_value(g, 0, n - 1)
    assert ours == pytest.approx(theirs)
