"""Golden-trace regression fixtures must reproduce byte-identically."""

import pytest

from repro.campaigns import goldens, replay_into
from repro.campaigns.goldens import GOLDEN_CASES, GoldenMismatch, check_golden, golden_path


class TestGoldens:
    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_checked_in_file_exists(self, name):
        assert golden_path(name).is_file()

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_byte_identical_reproduction(self, name):
        """EFT-Min / EFT-Rand rerun today must serialise to exactly the
        checked-in bytes (the satellite regression guarantee)."""
        trace = check_golden(name)
        assert trace.n > 0

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    @pytest.mark.parametrize("backend", ["reference", "array", "auto"])
    def test_byte_identical_through_simulator_backends(self, name, backend):
        """Replaying a golden through the event engine — on either
        backend — must serialise to exactly the checked-in bytes (the
        tentpole regression oracle; the EFT-Rand case exercises the
        silent reference fallback of the array path)."""
        trace = check_golden(name, backend=backend)
        assert trace.n > 0

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_replay_reproduces_placements(self, name):
        trace = goldens.load_golden(name)
        replayed = replay_into(GOLDEN_CASES[name].make_scheduler(), trace)
        assert trace.schedule().same_placements(replayed)

    def test_drift_detected(self, tmp_path, monkeypatch):
        """A tampered golden file must fail the check."""
        name = "eft-min-m4"
        tampered = tmp_path / "goldens"
        tampered.mkdir()
        original = golden_path(name).read_text()
        (tampered / f"{name}.trace.jsonl").write_text(original.replace('"machine": ', '"machine": 1 if 0 else '))
        monkeypatch.setattr(goldens, "GOLDEN_DIR", tampered)
        with pytest.raises(GoldenMismatch, match="drifted"):
            check_golden(name)

    def test_missing_file_detected(self, tmp_path, monkeypatch):
        monkeypatch.setattr(goldens, "GOLDEN_DIR", tmp_path / "nowhere")
        with pytest.raises(GoldenMismatch, match="missing"):
            check_golden("eft-min-m4")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown golden"):
            golden_path("no-such-golden")
