"""Campaign runner: determinism, parallelism, caching, failures."""

import pytest

from repro.campaigns import CampaignError, CampaignSpec, ResultCache, Unit, run_campaign

SQUARE = "tests.campaigns.unit_kinds:square"
DRAW = "tests.campaigns.unit_kinds:seeded_draw"
BOOM = "tests.campaigns.unit_kinds:boom"


def _spec(n=6):
    return CampaignSpec.build(
        "t", [Unit(kind=SQUARE, params={"x": i}, seed=i, label=f"u{i}") for i in range(n)]
    )


class TestSerial:
    def test_results_in_unit_order(self):
        res = run_campaign(_spec(), n_jobs=1)
        assert [r["value"] for r in res.results()] == [i**2 for i in range(6)]
        assert res.n_executed == 6 and res.n_cached == 0 and res.n_failed == 0

    def test_summary_mentions_counts(self):
        res = run_campaign(_spec(3), n_jobs=1)
        assert "3 units" in res.summary() and "3 executed" in res.summary()


class TestParallel:
    def test_matches_serial(self):
        spec = CampaignSpec.build(
            "draws", [Unit(kind=DRAW, params={"n": 5}, seed=s) for s in range(8)]
        )
        serial = run_campaign(spec, n_jobs=1).results()
        parallel = run_campaign(spec, n_jobs=4).results()
        assert serial == parallel

    def test_n_jobs_none_uses_cpu_count(self):
        res = run_campaign(_spec(3), n_jobs=None)
        assert res.n_jobs >= 1
        assert [r["value"] for r in res.results()] == [0, 1, 4]

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            run_campaign(_spec(2), n_jobs=0)


class TestCaching:
    def test_second_run_all_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_campaign(_spec(), n_jobs=1, cache=cache)
        assert first.n_executed == 6
        second = run_campaign(_spec(), n_jobs=2, cache=cache)
        assert second.n_executed == 0 and second.n_cached == 6
        assert second.all_cached
        assert first.results() == second.results()

    def test_changed_units_partially_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(_spec(4), n_jobs=1, cache=cache)
        bigger = run_campaign(_spec(6), n_jobs=1, cache=cache)
        assert bigger.n_cached == 4 and bigger.n_executed == 2

    def test_duplicate_units_execute_once(self):
        twin = Unit(kind=SQUARE, params={"x": 5}, seed=0)
        spec = CampaignSpec.build("dup", [twin, twin, twin])
        res = run_campaign(spec, n_jobs=1)
        assert [r["value"] for r in res.results()] == [25, 25, 25]
        assert res.n_executed == 1  # one outcome shared by the three twins


class TestFailures:
    def test_raises_by_default(self):
        spec = CampaignSpec.build("bad", [Unit(kind=BOOM, params={"x": 1})])
        with pytest.raises(CampaignError, match="boom"):
            run_campaign(spec, n_jobs=1)

    def test_collects_without_raise(self):
        spec = CampaignSpec.build(
            "mixed",
            [Unit(kind=SQUARE, params={"x": 2}), Unit(kind=BOOM, params={"x": 9})],
        )
        res = run_campaign(spec, n_jobs=1, raise_on_error=False)
        assert res.n_failed == 1 and res.n_executed == 1
        assert res.outcomes[0].ok and not res.outcomes[1].ok
        assert "boom" in res.outcomes[1].error
        with pytest.raises(CampaignError):
            res.results()

    def test_failures_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = CampaignSpec.build("bad", [Unit(kind=BOOM, params={"x": 1})])
        run_campaign(spec, n_jobs=1, cache=cache, raise_on_error=False)
        assert len(cache) == 0

    def test_parallel_failures_reported(self):
        spec = CampaignSpec.build(
            "bad-par", [Unit(kind=BOOM, params={"x": i}) for i in range(3)]
        )
        res = run_campaign(spec, n_jobs=2, raise_on_error=False)
        assert res.n_failed == 3


class TestProgress:
    def test_callback_sees_every_distinct_unit(self, tmp_path):
        seen = []
        run_campaign(_spec(4), n_jobs=1, progress=lambda d, t, o: seen.append((d, t, o.status)))
        assert len(seen) == 4
        assert seen[-1][0] == seen[-1][1] == 4
        assert all(s == "executed" for _, _, s in seen)

    def test_callback_reports_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(_spec(2), n_jobs=1, cache=cache)
        seen = []
        run_campaign(_spec(2), n_jobs=1, cache=cache, progress=lambda d, t, o: seen.append(o.status))
        assert seen == ["cached", "cached"]
