"""Tiny pure unit executors used by the campaign runner tests.

Importable as ``tests.campaigns.unit_kinds:<fn>`` so worker processes
can resolve them under any multiprocessing start method.
"""

import numpy as np


def square(params, seed):
    """Deterministic arithmetic on the params."""
    return {"value": int(params["x"]) ** 2, "seed": seed}


def seeded_draw(params, seed):
    """A seeded random draw — same seed, same result, any worker."""
    rng = np.random.default_rng(seed)
    return {"draws": [float(v) for v in rng.random(int(params["n"]))]}


def boom(params, seed):
    """Always fails."""
    raise RuntimeError(f"boom on x={params.get('x')}")
