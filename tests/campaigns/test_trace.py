"""Trace format: round trips, replay, versioning."""

import numpy as np
import pytest

from repro.campaigns import (
    TRACE_VERSION,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
    make_scheduler,
    record,
    replay_into,
)
from repro.core import EFT, Instance, eft_schedule
from repro.simulation.workload import WorkloadSpec, generate_workload


def _schedule(m=5, n=40, seed=3, tiebreak="min"):
    spec = WorkloadSpec(m=m, n=n, lam=2.5, k=2, strategy="overlapping", case="shuffled", s=1.0)
    inst = generate_workload(spec, rng=np.random.default_rng(seed))
    return eft_schedule(inst, tiebreak=tiebreak)


class TestRoundTrip:
    def test_loads_dumps_identity(self):
        trace = record(_schedule(), scheduler="EFT-min", meta={"note": "t"})
        text = dumps_trace(trace)
        assert loads_trace(text) == trace
        # serialisation is stable: dumps(loads(s)) == s byte for byte
        assert dumps_trace(loads_trace(text)) == text

    def test_float_exactness(self):
        trace = record(_schedule(seed=9))
        back = loads_trace(dumps_trace(trace))
        for a, b in zip(trace.records, back.records):
            assert a.release == b.release and a.start == b.start  # exact, not approx

    def test_file_roundtrip(self, tmp_path):
        trace = record(_schedule(), scheduler="EFT-min")
        path = dump_trace(trace, tmp_path / "sub" / "t.trace.jsonl")
        assert load_trace(path) == trace

    def test_unrestricted_machine_set(self):
        inst = Instance.build(3, releases=[0, 0.5], procs=1.0)
        trace = record(eft_schedule(inst))
        back = loads_trace(dumps_trace(trace))
        assert back.records[0].machine_set is None
        assert back.instance().tasks[0].machines is None


class TestStructure:
    def test_schedule_reconstruction(self):
        sched = _schedule()
        trace = record(sched, scheduler="EFT-min")
        rebuilt = trace.schedule()
        assert rebuilt.same_placements(sched)
        assert trace.n == len(sched)
        assert trace.instance().n == len(sched)

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro-trace"):
            loads_trace('{"format": "other"}\n')
        with pytest.raises(ValueError, match="empty"):
            loads_trace("")

    def test_rejects_future_version(self):
        trace = record(_schedule(n=4))
        text = dumps_trace(trace).replace(f'"version": {TRACE_VERSION}', '"version": 99')
        with pytest.raises(ValueError, match="version"):
            loads_trace(text)

    def test_rejects_truncated(self):
        text = dumps_trace(record(_schedule(n=6)))
        truncated = "\n".join(text.splitlines()[:-2]) + "\n"
        with pytest.raises(ValueError, match="declares n="):
            loads_trace(truncated)


class TestReplay:
    def test_same_scheduler_reproduces(self):
        sched = _schedule(tiebreak="min")
        trace = record(sched, scheduler="EFT-min")
        replayed = replay_into(EFT(trace.m, tiebreak="min"), trace)
        assert trace.schedule().same_placements(replayed)

    def test_different_scheduler_differs(self):
        trace = record(_schedule(tiebreak="min"), scheduler="EFT-min")
        replayed = replay_into(EFT(trace.m, tiebreak="max"), trace)
        assert not trace.schedule().same_placements(replayed)

    def test_rejects_m_mismatch(self):
        trace = record(_schedule(m=5))
        with pytest.raises(ValueError, match="m="):
            replay_into(EFT(4), trace)

    def test_rejects_used_scheduler(self):
        trace = record(_schedule())
        used = EFT(trace.m)
        used.run(trace.instance())
        with pytest.raises(ValueError, match="fresh"):
            replay_into(used, trace)


class TestMakeScheduler:
    @pytest.mark.parametrize(
        "name", ["eft-min", "eft-max", "eft-rand", "least-work", "round-robin", "random", "EFT-Min"]
    )
    def test_known_names(self, name):
        sched = make_scheduler(name, m=4, seed=1)
        assert sched.m == 4

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("sjf", m=4)
