"""Unit/spec hashing: stability, sensitivity, canonicalisation."""

import numpy as np
import pytest

from repro.campaigns import (
    CampaignSpec,
    Unit,
    canonical_json,
    get_unit_kind,
    register_unit_kind,
    stable_seed,
)


class TestCanonicalJson:
    def test_key_order_invariant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_numpy_types(self):
        out = canonical_json({"i": np.int64(3), "f": np.float64(0.5), "a": np.arange(3)})
        assert out == '{"a":[0,1,2],"f":0.5,"i":3}'

    def test_tuples_and_sets(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])
        assert canonical_json(frozenset({3, 1, 2})) == "[1,2,3]"

    def test_float_roundtrip_exact(self):
        x = 0.1 + 0.2
        assert float(canonical_json(x)) == x

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError, match="canonicalise"):
            canonical_json(object())


class TestUnitHash:
    def test_stable_across_calls(self):
        u = Unit(kind="k", params={"a": 1, "b": [1.5, 2.5]}, seed=7)
        assert u.content_hash() == u.content_hash()
        assert len(u.content_hash()) == 16

    def test_param_order_irrelevant(self):
        u1 = Unit(kind="k", params={"a": 1, "b": 2})
        u2 = Unit(kind="k", params={"b": 2, "a": 1})
        assert u1.content_hash() == u2.content_hash()

    def test_sensitive_to_kind_params_seed(self):
        base = Unit(kind="k", params={"a": 1}, seed=0)
        assert base.content_hash() != Unit(kind="k2", params={"a": 1}, seed=0).content_hash()
        assert base.content_hash() != Unit(kind="k", params={"a": 2}, seed=0).content_hash()
        assert base.content_hash() != Unit(kind="k", params={"a": 1}, seed=1).content_hash()

    def test_label_not_hashed(self):
        assert (
            Unit(kind="k", params={"a": 1}, label="x").content_hash()
            == Unit(kind="k", params={"a": 1}, label="y").content_hash()
        )

    def test_numpy_params_hash_like_python(self):
        u1 = Unit(kind="k", params={"m": np.int64(4), "w": np.array([0.25, 0.75])})
        u2 = Unit(kind="k", params={"m": 4, "w": [0.25, 0.75]})
        assert u1.content_hash() == u2.content_hash()


class TestSpec:
    def test_spec_hash_changes_with_units(self):
        s1 = CampaignSpec.build("c", [Unit(kind="k", params={"a": 1})])
        s2 = CampaignSpec.build("c", [Unit(kind="k", params={"a": 2})])
        assert s1.spec_hash() != s2.spec_hash()
        assert s1.n_units == 1

    def test_units_coerced_to_tuple(self):
        s = CampaignSpec(name="c", units=[Unit(kind="k")])
        assert isinstance(s.units, tuple)


class TestKindResolution:
    def test_registered_alias(self):
        register_unit_kind("test-alias-spec", lambda params, seed: {"ok": True})
        assert get_unit_kind("test-alias-spec")({}, 0) == {"ok": True}

    def test_module_path(self):
        fn = get_unit_kind("tests.campaigns.unit_kinds:square")
        assert fn({"x": 3}, 0)["value"] == 9

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown unit kind"):
            get_unit_kind("no-such-kind")
        with pytest.raises(ValueError, match="no attribute"):
            get_unit_kind("tests.campaigns.unit_kinds:missing")


class TestStableSeed:
    def test_deterministic_and_distinct(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert 0 <= stable_seed("x") < 2**63
