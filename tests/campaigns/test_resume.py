"""Interrupt + resume: partial manifests and cache-driven continuation."""

import json

import pytest

from repro.campaigns import (
    CampaignInterrupted,
    CampaignSpec,
    ResultCache,
    Unit,
    build_manifest,
    load_manifest,
    run_campaign,
    write_manifest,
)

OK = "repro.faults.units:ok"


def ok_units(n):
    return [Unit(kind=OK, params={"x": i}, seed=i, label=f"ok-{i}") for i in range(n)]


def bomb_after(n):
    def progress(done, total, outcome):
        if done == n:
            raise KeyboardInterrupt

    return progress


class TestInterrupt:
    def test_interrupt_carries_partial_result(self):
        spec = CampaignSpec(name="part", units=tuple(ok_units(5)))
        with pytest.raises(CampaignInterrupted) as exc:
            run_campaign(spec, progress=bomb_after(2))
        partial = exc.value.result
        assert partial.interrupted
        assert partial.n_executed == 2
        assert partial.n_interrupted == 3
        assert "interrupted" in partial.summary()
        # Unresolved outcomes are typed, not missing.
        statuses = [o.status for o in partial.outcomes]
        assert statuses.count("interrupted") == 3
        for o in partial.outcomes:
            if o.status == "interrupted":
                assert o.attempts == 0 and o.result is None

    def test_interrupt_in_isolated_pool(self):
        spec = CampaignSpec(name="part2", units=tuple(ok_units(6)))
        with pytest.raises(CampaignInterrupted) as exc:
            run_campaign(spec, n_jobs=2, progress=bomb_after(3))
        partial = exc.value.result
        assert partial.interrupted
        assert partial.n_executed >= 3
        assert partial.n_executed + partial.n_interrupted == 6

    def test_partial_manifest_is_valid_and_flagged(self, tmp_path):
        spec = CampaignSpec(name="part3", units=tuple(ok_units(4)))
        with pytest.raises(CampaignInterrupted) as exc:
            run_campaign(spec, progress=bomb_after(2))
        manifest = build_manifest(exc.value.result)
        assert manifest.interrupted
        assert manifest.n_interrupted == 2
        path = write_manifest(manifest, tmp_path / "m.json")
        raw = json.loads(path.read_text())
        assert raw["version"] == 3
        back = load_manifest(path)
        assert back.interrupted and back.n_interrupted == 2
        assert {u["status"] for u in back.units} == {"executed", "interrupted"}


class TestResume:
    def test_resume_equals_uninterrupted_run(self, tmp_path):
        spec = CampaignSpec(name="res", units=tuple(ok_units(5)))
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(CampaignInterrupted):
            run_campaign(spec, cache=cache, progress=bomb_after(2))
        resumed = run_campaign(spec, cache=cache)
        assert resumed.n_cached == 2
        assert resumed.n_executed == 3
        fresh = run_campaign(spec)
        assert [o.result for o in resumed.outcomes] == [o.result for o in fresh.outcomes]
        # The post-resume manifest is complete and unflagged.
        manifest = build_manifest(resumed)
        assert not manifest.interrupted and manifest.n_interrupted == 0

    def test_second_resume_is_all_cached(self, tmp_path):
        spec = CampaignSpec(name="res2", units=tuple(ok_units(3)))
        cache = ResultCache(tmp_path / "cache")
        run_campaign(spec, cache=cache)
        again = run_campaign(spec, cache=cache)
        assert again.all_cached


class TestPreV3Manifests:
    def test_v2_manifest_still_loads(self, tmp_path):
        doc = {
            "format": "repro-manifest",
            "version": 2,
            "campaign": "old",
            "spec_hash": "ab" * 8,
            "git": "unknown",
            "started_at": "2026-01-01T00:00:00Z",
            "wall_time": 1.0,
            "n_jobs": 1,
            "n_units": 1,
            "n_executed": 1,
            "n_cached": 0,
            "n_failed": 0,
            "units": [{"hash": "ab" * 8, "label": None, "status": "executed", "duration": 1.0}],
            "meta": {},
            "timings": {},
        }
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(doc))
        manifest = load_manifest(path)
        assert manifest.n_interrupted == 0
        assert not manifest.interrupted


class TestCliExitCodes:
    """Satellite: `repro campaign` exit codes and failure reporting."""

    @pytest.fixture
    def fake_campaign(self, monkeypatch):
        """Point the fig11 campaign builder at a tiny controllable spec."""
        from repro.experiments import fig11

        def install(units):
            spec = CampaignSpec(name="fig11", units=tuple(units))

            def build_campaign(**kw):
                def assemble(results):
                    class T:
                        @staticmethod
                        def to_text():
                            return f"assembled {len(results)} units"

                    return T

                return spec, assemble

            monkeypatch.setattr(fig11, "build_campaign", build_campaign)
            return spec

        return install

    def test_failure_exits_one_with_stderr_summary(self, fake_campaign, tmp_path, capsys):
        from repro.cli import main

        fake_campaign(ok_units(2) + [Unit(kind="repro.faults.units:crash", params={}, seed=7, label="boom")])
        code = main([
            "campaign", "fig11", "-j", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "1 failed" in err
        assert "boom" in err
        # the partial manifest was still written (it is the resume point)
        assert load_manifest(tmp_path / "out" / "fig11.manifest.json").n_failed == 1

    def test_success_exits_zero(self, fake_campaign, tmp_path, capsys):
        from repro.cli import main

        fake_campaign(ok_units(2))
        code = main([
            "campaign", "fig11",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
        ])
        assert code == 0
        assert "assembled 2 units" in capsys.readouterr().out

    def test_resume_without_out_exits_two(self, fake_campaign, capsys):
        from repro.cli import main

        fake_campaign(ok_units(2))
        code = main(["campaign", "fig11", "--resume"])
        assert code == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_resume_missing_manifest_exits_two(self, fake_campaign, tmp_path, capsys):
        from repro.cli import main

        fake_campaign(ok_units(2))
        code = main([
            "campaign", "fig11", "--resume",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "nowhere"),
        ])
        assert code == 2
        assert "no manifest" in capsys.readouterr().err

    def test_resume_spec_mismatch_exits_two(self, fake_campaign, tmp_path, capsys):
        from repro.cli import main

        fake_campaign(ok_units(2))
        ok = main([
            "campaign", "fig11",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
        ])
        assert ok == 0
        capsys.readouterr()
        fake_campaign(ok_units(3))  # different spec, same manifest path
        code = main([
            "campaign", "fig11", "--resume",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
        ])
        assert code == 2
        assert "spec" in capsys.readouterr().err

    def test_resume_happy_path_all_cached(self, fake_campaign, tmp_path, capsys):
        from repro.cli import main

        fake_campaign(ok_units(2))
        assert main([
            "campaign", "fig11",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
        ]) == 0
        capsys.readouterr()
        code = main([
            "campaign", "fig11", "--resume",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
        ])
        assert code == 0
        assert "2 cached" in capsys.readouterr().out
