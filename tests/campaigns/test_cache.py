"""On-disk result cache behaviour."""

import json

from repro.campaigns import ResultCache, Unit


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        unit = Unit(kind="k", params={"a": 1}, label="lbl")
        h = unit.content_hash()
        assert cache.get(h) is None
        assert h not in cache
        path = cache.put(h, {"value": 42}, unit=unit)
        assert path.is_file()
        assert cache.get(h) == {"value": 42}
        assert h in cache
        assert len(cache) == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        h = "abcdef0123456789"
        cache.put(h, {})
        assert cache.path_for(h) == tmp_path / "ab" / f"{h}.json"

    def test_corrupted_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        h = "deadbeefdeadbeef"
        cache.put(h, {"v": 1})
        cache.path_for(h).write_text("{not json")
        assert cache.get(h) is None

    def test_hash_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        h1, h2 = "aa" * 8, "bb" * 8
        cache.put(h1, {"v": 1})
        # a foreign entry copied to the wrong key must not be served
        payload = json.loads(cache.path_for(h1).read_text())
        cache.path_for(h2).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(h2).write_text(json.dumps(payload))
        assert cache.get(h2) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 8, {"i": i})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_missing_root_ok(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.get("aa" * 8) is None
        assert len(cache) == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" * 8, {"i": i})
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_failed_write_cleans_up_and_preserves_old_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        h = "cc" * 8
        cache.put(h, {"v": "old"})

        class Unserialisable:
            pass

        try:
            cache.put(h, {"v": Unserialisable()})
        except TypeError:
            pass
        else:  # pragma: no cover - json must reject the object
            raise AssertionError("expected TypeError")
        # the aborted write left no temp file and did not clobber the entry
        assert list(tmp_path.rglob("*.tmp")) == []
        assert cache.get(h) == {"v": "old"}

    def test_put_fsyncs_before_replace(self, tmp_path, monkeypatch):
        """The durability barrier: data reaches the disk before the
        rename publishes the entry."""
        import os as os_mod

        import repro.campaigns.cache as cache_mod

        synced = []
        real_fsync = os_mod.fsync

        def spy(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(cache_mod.os, "fsync", spy)
        ResultCache(tmp_path).put("dd" * 8, {"v": 1})
        assert len(synced) == 1
