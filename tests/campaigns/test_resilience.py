"""Runner resilience: crash isolation, timeouts, retry with backoff."""

import time

import pytest

from repro.campaigns import CampaignSpec, ResultCache, RetryPolicy, Unit, run_campaign

OK = "repro.faults.units:ok"
CRASH = "repro.faults.units:crash"
SLEEP = "repro.faults.units:sleep"
FLAKY = "repro.faults.units:flaky"


def ok_units(n):
    return [Unit(kind=OK, params={"x": i}, seed=i, label=f"ok-{i}") for i in range(n)]


class TestCrashIsolation:
    def test_one_crash_does_not_abort_the_pool(self):
        spec = CampaignSpec(
            name="crash",
            units=tuple(ok_units(4) + [Unit(kind=CRASH, params={"code": 137}, seed=9, label="boom")]),
        )
        result = run_campaign(spec, n_jobs=2, raise_on_error=False)
        assert result.n_executed == 4
        assert result.n_failed == 1
        assert not result.interrupted
        failure = result.failures()[0]
        assert failure.unit.label == "boom"
        assert "crashed" in failure.error
        assert "137" in failure.error

    def test_crash_in_single_isolated_worker(self):
        spec = CampaignSpec(
            name="crash1", units=(Unit(kind=CRASH, params={}, seed=1),)
        )
        # timeout forces the isolated path even with one job
        result = run_campaign(spec, timeout=30.0, raise_on_error=False)
        assert result.n_failed == 1

    def test_outcome_order_is_unit_order_despite_parallel_completion(self):
        spec = CampaignSpec(name="order", units=tuple(ok_units(6)))
        serial = run_campaign(spec)
        parallel = run_campaign(spec, n_jobs=3)
        assert [o.result for o in parallel.outcomes] == [o.result for o in serial.outcomes]
        assert [o.unit_hash for o in parallel.outcomes] == [o.unit_hash for o in serial.outcomes]


class TestTimeout:
    def test_hung_unit_is_killed_and_reported(self):
        spec = CampaignSpec(
            name="hang",
            units=(
                Unit(kind=SLEEP, params={"seconds": 60}, seed=1, label="hung"),
                Unit(kind=OK, params={"x": 1}, seed=2),
            ),
        )
        t0 = time.monotonic()
        result = run_campaign(spec, n_jobs=2, timeout=0.5, raise_on_error=False)
        assert time.monotonic() - t0 < 20.0
        assert result.n_failed == 1
        assert result.n_executed == 1
        assert "timeout" in result.failures()[0].error

    def test_fast_units_unaffected_by_timeout(self):
        spec = CampaignSpec(name="fast", units=tuple(ok_units(3)))
        result = run_campaign(spec, timeout=30.0)
        assert result.n_executed == 3


class TestRetry:
    def test_flaky_unit_heals_within_budget(self, tmp_path):
        spec = CampaignSpec(
            name="flaky",
            units=(
                Unit(kind=FLAKY, params={"marker": str(tmp_path), "fail_times": 2}, seed=1),
            ),
        )
        result = run_campaign(
            spec, retry=RetryPolicy(retries=3, backoff=0.01), raise_on_error=False
        )
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.attempts == 3

    def test_retries_exhausted_reports_failure(self, tmp_path):
        spec = CampaignSpec(
            name="flaky2",
            units=(
                Unit(kind=FLAKY, params={"marker": str(tmp_path), "fail_times": 99}, seed=1),
            ),
        )
        result = run_campaign(spec, retry=2, raise_on_error=False)
        assert result.n_failed == 1
        assert result.outcomes[0].attempts == 3  # 1 + 2 retries

    def test_int_shorthand(self, tmp_path):
        spec = CampaignSpec(
            name="flaky3",
            units=(
                Unit(kind=FLAKY, params={"marker": str(tmp_path), "fail_times": 1}, seed=1),
            ),
        )
        result = run_campaign(spec, retry=1, raise_on_error=False)
        assert result.outcomes[0].ok

    def test_successful_result_cached_after_retry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "marker"
        marker.mkdir()
        spec = CampaignSpec(
            name="flaky4",
            units=(
                Unit(kind=FLAKY, params={"marker": str(marker), "fail_times": 1}, seed=1),
            ),
        )
        first = run_campaign(spec, retry=2, cache=cache, raise_on_error=False)
        assert first.outcomes[0].ok
        again = run_campaign(spec, cache=cache)
        assert again.all_cached


class TestRetryPolicy:
    def test_delay_deterministic_and_growing(self):
        p = RetryPolicy(retries=3, backoff=0.25)
        a = [p.delay("deadbeef", n) for n in (1, 2, 3)]
        b = [p.delay("deadbeef", n) for n in (1, 2, 3)]
        assert a == b
        assert a[0] < a[1] < a[2]

    def test_jitter_decorrelates_units(self):
        p = RetryPolicy(retries=1, backoff=1.0, jitter=0.5)
        assert p.delay("unit-a", 1) != p.delay("unit-b", 1)

    def test_max_backoff_caps_growth(self):
        p = RetryPolicy(retries=10, backoff=1.0, max_backoff=2.0, jitter=0.0)
        assert p.delay("x", 8) == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)


class TestErrorRaising:
    def test_raise_on_error_still_raises_campaign_error(self):
        from repro.campaigns import CampaignError

        spec = CampaignSpec(name="boom", units=(Unit(kind=CRASH, params={}, seed=1),))
        with pytest.raises(CampaignError):
            run_campaign(spec, n_jobs=2)
