"""Run manifest build / write / load round trip."""

import pytest

from repro.campaigns import (
    CampaignSpec,
    Unit,
    build_manifest,
    git_describe,
    load_manifest,
    run_campaign,
    write_manifest,
)


def _result():
    spec = CampaignSpec.build(
        "mtest",
        [Unit(kind="tests.campaigns.unit_kinds:square", params={"x": i}, label=f"u{i}") for i in range(3)],
        scale="tiny",
    )
    return run_campaign(spec, n_jobs=1)


class TestManifest:
    def test_build(self):
        manifest = build_manifest(_result())
        assert manifest.campaign == "mtest"
        assert manifest.n_units == 3 and manifest.n_executed == 3
        assert manifest.meta == {"scale": "tiny"}
        assert len(manifest.units) == 3
        assert all(u["status"] == "executed" for u in manifest.units)
        assert manifest.started_at.endswith("Z")

    def test_write_load_roundtrip(self, tmp_path):
        manifest = build_manifest(_result())
        path = write_manifest(manifest, tmp_path / "run" / "m.json")
        loaded = load_manifest(path)
        assert loaded == manifest

    def test_load_rejects_foreign(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="not a repro-manifest"):
            load_manifest(path)

    def test_spec_hash_pinned(self):
        result = _result()
        assert build_manifest(result).spec_hash == result.spec.spec_hash()

    def test_timings_recorded(self):
        result = _result()
        assert set(result.timings) >= {"cache_lookup", "execute", "unit_execute"}
        assert all(v >= 0.0 for v in result.timings.values())
        manifest = build_manifest(result)
        assert manifest.timings == result.timings

    def test_timings_survive_roundtrip(self, tmp_path):
        manifest = build_manifest(_result())
        path = write_manifest(manifest, tmp_path / "m.json")
        assert load_manifest(path).timings == manifest.timings

    def test_loads_v1_manifest_without_timings(self, tmp_path):
        """Manifests written before version 2 load with empty timings."""
        manifest = build_manifest(_result())
        path = write_manifest(manifest, tmp_path / "m.json")
        import json

        data = json.loads(path.read_text())
        data["version"] = 1
        del data["timings"]
        path.write_text(json.dumps(data))
        loaded = load_manifest(path)
        assert loaded.timings == {}
        assert loaded.campaign == "mtest"


class TestGitDescribe:
    def test_returns_string(self):
        assert isinstance(git_describe(), str) and git_describe()

    def test_outside_repo(self, tmp_path):
        assert git_describe(tmp_path) == "unknown"
