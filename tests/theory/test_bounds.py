"""Tests for the closed-form bound registry (Tables 1 and 2)."""

import math

import pytest

from repro.theory import (
    TABLE1,
    TABLE2,
    eft_disjoint_ratio,
    eft_interval_lower_bound,
    fifo_competitive_ratio,
    fixed_k_lower_bound,
    inclusive_lower_bound,
    interval_any_lower_bound,
    nested_lower_bound,
)


class TestClosedForms:
    def test_fifo_ratio(self):
        assert fifo_competitive_ratio(1) == 1.0  # optimal on one machine
        assert fifo_competitive_ratio(2) == 2.0
        assert fifo_competitive_ratio(15) == pytest.approx(3 - 2 / 15)

    def test_eft_disjoint(self):
        assert eft_disjoint_ratio(3) == pytest.approx(3 - 2 / 3)
        assert eft_disjoint_ratio(1) == 1.0

    def test_inclusive(self):
        assert inclusive_lower_bound(16) == 5
        assert inclusive_lower_bound(15) == math.floor(math.log2(15) + 1)

    def test_fixed_k(self):
        assert fixed_k_lower_bound(16, 2) == 4
        assert fixed_k_lower_bound(27, 3) == 3

    def test_nested(self):
        assert nested_lower_bound(16) == pytest.approx(2.0)

    def test_interval_any(self):
        assert interval_any_lower_bound() == 2.0

    def test_eft_interval(self):
        assert eft_interval_lower_bound(15, 3) == 13
        with pytest.raises(ValueError):
            eft_interval_lower_bound(5, 5)
        with pytest.raises(ValueError):
            eft_interval_lower_bound(5, 1)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fifo_competitive_ratio(0)
        with pytest.raises(ValueError):
            fixed_k_lower_bound(8, 1)


class TestRegistries:
    def test_table1_nonempty_rows(self):
        assert len(TABLE1) >= 10
        for e in TABLE1:
            assert e.kind in ("upper", "lower")
            assert e.reference

    def test_table2_covers_all_structures(self):
        structures = {e.setting.split(",")[0] for e in TABLE2}
        assert {"inclusive", "nested", "disjoint", "interval"} <= structures

    def test_table2_references_all_theorems(self):
        refs = " ".join(e.reference for e in TABLE2)
        for thm in ("Theorem 3", "Theorem 4", "Theorem 5", "Corollary 1", "Theorem 7", "Theorems 8"):
            assert thm in refs

    def test_registry_formulas_evaluate(self):
        assert TABLE2[0].formula(16) == 5  # inclusive
        assert TABLE2[1].formula(16, 2) == 4  # fixed-k
        assert TABLE2[3].formula(3) == pytest.approx(3 - 2 / 3)  # disjoint

    def test_ordering_consistency(self):
        """Bounds must be internally consistent at m=16, k=3: the EFT
        interval lower bound dwarfs every log bound."""
        m, k = 16, 3
        assert eft_interval_lower_bound(m, k) > inclusive_lower_bound(m)
        assert eft_interval_lower_bound(m, k) > nested_lower_bound(m)
        assert inclusive_lower_bound(m) >= nested_lower_bound(m)
