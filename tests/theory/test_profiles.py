"""Tests for the Theorem 8 profile machinery."""

import numpy as np
import pytest

from repro.adversaries import run_with_profiles
from repro.core import EFT
from repro.theory import (
    find_plateau,
    is_nonincreasing,
    profile_leq,
    profile_lt,
    stable_profile,
    total_weighted_distance,
    weighted_distance,
)


class TestStableProfile:
    def test_formula(self):
        """w_tau(j) = min(m - j, m - k)."""
        assert stable_profile(6, 3).tolist() == [3, 3, 3, 2, 1, 0]

    def test_k2(self):
        assert stable_profile(4, 2).tolist() == [2, 2, 1, 0]

    def test_last_machine_empty(self):
        for m, k in [(5, 2), (8, 3), (10, 9)]:
            assert stable_profile(m, k)[-1] == 0

    def test_first_k_machines_flat(self):
        w = stable_profile(8, 3)
        assert np.allclose(w[:3], 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            stable_profile(4, 5)


class TestWeightedDistance:
    def test_phi_zero_at_stable(self):
        """phi_t(j) = 2^{w_tau(j)} (m-k+1-w_t(j)) — at w_t = w_tau the
        per-machine value is 2^{w_tau(j)} (m-k+1-w_tau(j)) > 0; the
        Phi=0 threshold corresponds to w_t(j) = m-k+1 (flow blown)."""
        m, k = 6, 3
        blown = np.full(m, m - k + 1, dtype=float)
        assert total_weighted_distance(blown, m, k) == 0.0

    def test_empty_profile_positive(self):
        m, k = 6, 3
        assert total_weighted_distance(np.zeros(m), m, k) > 0

    def test_size_checked(self):
        with pytest.raises(ValueError):
            weighted_distance(np.zeros(3), 4, 2)

    def test_phi_nonincreasing_during_adversary(self):
        """Lemma 5: Phi_t never increases under EFT (any tie-break) on
        the adversary instance."""
        m, k = 6, 3
        for tiebreak in ("min", "max"):
            _, profiles = run_with_profiles(m, k, 50, EFT(m, tiebreak=tiebreak))
            phis = [total_weighted_distance(profiles[t], m, k) for t in range(50)]
            assert all(b <= a + 1e-9 for a, b in zip(phis, phis[1:]))

    @pytest.mark.parametrize("seed", [0, 7])
    def test_phi_nonincreasing_under_random_tiebreak(self, seed):
        """Theorem 9's engine: Phi is non-increasing for EFT-Rand too,
        whatever the coin flips."""
        m, k = 5, 2
        _, profiles = run_with_profiles(m, k, 80, EFT(m, tiebreak="rand", rng=seed))
        phis = [total_weighted_distance(profiles[t], m, k) for t in range(80)]
        assert all(b <= a + 1e-9 for a, b in zip(phis, phis[1:]))


class TestComparisons:
    def test_leq_and_lt(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, 3.0])
        assert profile_leq(a, b)
        assert profile_lt(a, b)
        assert not profile_lt(a, a)
        assert profile_leq(a, a)
        assert not profile_leq(b, a)


class TestPlateau:
    def test_finds_first_plateau(self):
        assert find_plateau([3, 3, 2, 1]) == 1
        assert find_plateau([3, 2, 2, 1]) == 2

    def test_none_when_strictly_decreasing(self):
        assert find_plateau([3, 2, 1, 0]) is None

    def test_nonincreasing_predicate(self):
        assert is_nonincreasing([3, 3, 2])
        assert not is_nonincreasing([1, 2])
