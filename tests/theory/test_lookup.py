"""Tests for the best-known-bounds lookup."""

import pytest

from repro.theory.lookup import ALGORITHM_CLASSES, best_known_bounds


class TestLookup:
    def test_unrestricted_eft(self):
        b = best_known_bounds("none", "eft", m=15)
        assert b.upper == pytest.approx(3 - 2 / 15)
        assert b.lower == pytest.approx(2 - 1 / 15)
        assert b.lower <= b.upper

    def test_unrestricted_general_online_has_no_upper(self):
        b = best_known_bounds("none", "online", m=15)
        assert b.upper is None

    def test_inclusive_immediate_dispatch(self):
        b = best_known_bounds("inclusive", "immediate-dispatch", m=16)
        assert b.lower == 5.0
        assert "Theorem 3" in b.lower_ref

    def test_inclusive_general_online_weaker(self):
        imd = best_known_bounds("inclusive", "immediate-dispatch", m=16)
        onl = best_known_bounds("inclusive", "online", m=16)
        assert onl.lower <= imd.lower

    def test_disjoint_eft(self):
        b = best_known_bounds("disjoint", "eft", m=15, k=3)
        assert b.upper == pytest.approx(3 - 2 / 3)
        assert "Corollary 1" in b.upper_ref

    def test_interval_eft_is_linear(self):
        b = best_known_bounds("interval", "eft", m=15, k=3)
        assert b.lower == 13.0
        assert b.upper is None

    def test_interval_any_online_is_two(self):
        b = best_known_bounds("interval", "online", m=15, k=3)
        assert b.lower == 2.0

    def test_general_structure(self):
        b = best_known_bounds("general", "online", m=20)
        assert b.lower == 10.0

    def test_k_required(self):
        with pytest.raises(ValueError, match="need k"):
            best_known_bounds("disjoint", "eft", m=10)
        with pytest.raises(ValueError, match="need k"):
            best_known_bounds("interval", "eft", m=10)

    def test_unknown_inputs(self):
        with pytest.raises(ValueError, match="structure"):
            best_known_bounds("bogus", "eft", m=4)
        with pytest.raises(ValueError, match="algorithm class"):
            best_known_bounds("none", "bogus", m=4)

    def test_all_classes_enumerable(self):
        for cls in ALGORITHM_CLASSES:
            b = best_known_bounds("nested", cls, m=8)
            assert b.lower > 1

    def test_consistency_lower_below_upper_everywhere(self):
        for structure, k in (("none", None), ("disjoint", 3)):
            b = best_known_bounds(structure, "eft", m=12, k=k)
            if b.upper is not None:
                assert b.lower <= b.upper + 1e-9
