"""The two profile computations must agree.

``repro.core.metrics.waiting_profile`` reconstructs :math:`w_t` from a
finished schedule; ``ImmediateDispatchScheduler.waiting_work`` reports
it live; ``run_with_profiles`` records it during the adversary run.
All three describe the same quantity.
"""

import numpy as np
import pytest

from repro.adversaries import run_with_profiles
from repro.core import EFT, eft_schedule, waiting_profile
from repro.simulation import WorkloadSpec, generate_workload


class TestProfileConsistency:
    def test_online_equals_offline_on_adversary(self):
        m, k, steps = 6, 3, 20
        schedule, online_profiles = run_with_profiles(m, k, steps, EFT(m, tiebreak="min"))
        for t in range(steps):
            offline = waiting_profile(schedule, float(t))
            # offline includes tasks released exactly at t (the batch
            # released at t), online was snapped just before;
            # compare at t - 0.5 where no release happens
            if t == 0:
                continue
            offline_mid = waiting_profile(schedule, t - 0.5)
            online_mid = online_profiles[t] + 0.5  # half a unit less processed
            # every busy machine has processed 0.5 more by t than t-0.5;
            # idle machines stay 0 — compare via the exact relation on
            # total work instead of per machine:
            assert offline_mid.sum() == pytest.approx(
                sum(max(0.0, w + 0.5) if w > 0 or _mid_busy(schedule, j + 1, t - 0.5) else 0.0
                    for j, w in enumerate(online_profiles[t]))
            , abs=1e-6)

    def test_profiles_on_random_workload(self):
        spec = WorkloadSpec(m=5, n=60, lam=3.0, k=3, strategy="overlapping")
        inst = generate_workload(spec, rng=2)
        scheduler = EFT(5, tiebreak="min")
        checkpoints = [2.0, 5.0, 9.0]
        live = {}
        for task in inst:
            while checkpoints and task.release > checkpoints[0]:
                t = checkpoints.pop(0)
                live[t] = scheduler.waiting_work(t)
            scheduler.submit(task)
        schedule = scheduler.schedule()
        for t, profile in live.items():
            offline = waiting_profile(schedule, t)
            for j in range(1, 6):
                assert profile[j] == pytest.approx(offline[j - 1], abs=1e-9)


def _mid_busy(schedule, machine: int, t: float) -> bool:
    return any(a.start <= t < a.completion for a in schedule.on_machine(machine))
