"""Tests for the queueing-theoretic prediction module."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    erlang_c,
    mmc_mean_wait,
    mmc_wait_quantile,
    predict_disjoint_curve,
    predict_fmax,
    stability_limit,
)
from repro.maxload import max_load_lp
from repro.simulation import shuffled_case, uniform_case, worst_case


class TestErlangC:
    def test_single_server_is_rho(self):
        """M/M/1: P(wait) = rho."""
        assert erlang_c(1, 0.5) == pytest.approx(0.5)
        assert erlang_c(1, 0.9) == pytest.approx(0.9)

    def test_textbook_value(self):
        """Classic M/M/2 with a = 1 (rho = 0.5): C = 1/3."""
        assert erlang_c(2, 1.0) == pytest.approx(1 / 3)

    def test_zero_load(self):
        assert erlang_c(3, 0.0) == 0.0

    def test_saturated(self):
        assert erlang_c(2, 2.5) == 1.0

    @given(st.integers(1, 30), st.floats(0.01, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_in_unit_interval(self, c, rho):
        val = erlang_c(c, rho * c)
        assert 0 <= val <= 1

    @given(st.integers(1, 20), st.floats(0.05, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_load(self, c, rho):
        assert erlang_c(c, rho * c) <= erlang_c(c, min(0.999, rho + 0.05) * c) + 1e-12

    def test_more_servers_less_waiting(self):
        """At equal per-server load, pooling reduces waiting
        (economies of scale)."""
        for rho in (0.5, 0.8):
            vals = [erlang_c(c, rho * c) for c in (1, 2, 4, 8)]
            assert all(b <= a + 1e-12 for a, b in zip(vals, vals[1:]))


class TestWaits:
    def test_mm1_mean_wait(self):
        """M/M/1: Wq = rho / (mu - lambda)."""
        lam, mu = 0.5, 1.0
        assert mmc_mean_wait(lam, 1, mu) == pytest.approx(0.5 / 0.5)

    def test_unstable_infinite(self):
        assert mmc_mean_wait(2.0, 2) == math.inf
        assert mmc_wait_quantile(2.0, 2, 0.9) == math.inf

    def test_quantile_zero_below_no_wait_mass(self):
        # P(wait) = 1/3 for c=2, a=1; the 0.5-quantile is 0
        assert mmc_wait_quantile(1.0, 2, 0.5) == 0.0

    def test_quantile_monotone(self):
        qs = [mmc_wait_quantile(1.8, 2, q) for q in (0.8, 0.9, 0.99, 0.999)]
        assert qs == sorted(qs)
        assert qs[-1] > 0

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            mmc_wait_quantile(0.5, 1, 1.0)


class TestPredictions:
    def test_fmax_at_least_service(self):
        assert predict_fmax(0.1, 4, 1000) >= 1.0

    def test_fmax_grows_with_load(self):
        vals = [predict_fmax(rho * 3, 3, 10_000) for rho in (0.3, 0.6, 0.9, 0.98)]
        assert vals == sorted(vals)

    def test_stability_limit_equals_lp(self):
        """Queueing stability of the disjoint groups reproduces the
        max-load LP optimum exactly."""
        for seed in range(5):
            pop = shuffled_case(15, 1.0, rng=seed)
            assert stability_limit(pop, 3) == pytest.approx(
                max_load_lp(pop, "disjoint", 3).lam
            )

    def test_disjoint_curve_diverges_at_capacity(self):
        pop = worst_case(15, 1.0)
        limit_pct = 100 * stability_limit(pop, 3) / 15
        curve = predict_disjoint_curve(pop, 3, [10, 20, 30, int(limit_pct) + 5])
        finite = [v for l, v in curve.items() if l <= 30]
        assert all(np.isfinite(v) for v in finite)
        assert curve[float(int(limit_pct) + 5)] == math.inf

    def test_uniform_prediction_roughly_matches_simulation(self):
        """Order-of-magnitude agreement with a real simulation of the
        disjoint strategy at moderate load (model error is bounded by
        the M/M vs M/D service-time gap, about 2x)."""
        from repro.core import eft_schedule
        from repro.simulation import WorkloadSpec, generate_workload

        m, k, n, load = 15, 3, 6000, 60
        pop = uniform_case(m)
        pred = predict_disjoint_curve(pop, k, [load], n=n)[float(load)]
        spec = WorkloadSpec(m=m, n=n, lam=load / 100 * m, k=k, strategy="disjoint")
        sims = [
            eft_schedule(generate_workload(spec, rng=rep, popularity=pop)).max_flow
            for rep in range(3)
        ]
        measured = float(np.median(sims))
        assert pred / 3 <= measured <= pred * 3
