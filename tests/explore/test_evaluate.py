"""Tests for the strategy-exploration harness."""

import pytest

from repro.explore import adversarial_probe, evaluate_strategies, score_strategy
from repro.psets import OverlappingIntervals


class TestProbe:
    def test_overlapping_collapses_to_bound(self):
        """The generalised probe reduces to the Theorem 8 instance on
        overlapping intervals: Fmax = m - k + 1."""
        m, k = 8, 3
        assert adversarial_probe(OverlappingIntervals(m, k), steps=m**3) == m - k + 1

    def test_mirrored_resists_better(self):
        """The alternating-direction layout breaks the cascade: the
        probe lands strictly below m - k + 1."""
        from repro.explore import MirroredIntervals

        m, k = 10, 3
        over = adversarial_probe(OverlappingIntervals(m, k), steps=5 * m**2)
        mirr = adversarial_probe(MirroredIntervals(m, k), steps=5 * m**2)
        assert over == m - k + 1
        assert mirr < over


class TestScore:
    @pytest.fixture(scope="class")
    def score(self):
        return score_strategy("overlapping", m=8, k=3, n_permutations=6, sim_tasks=600)

    def test_fields(self, score):
        assert score.name == "overlapping"
        assert score.structure == "interval"
        assert 0 < score.median_max_load <= 100
        assert 0 < score.worst_case_max_load <= 100
        assert score.sim_fmax >= 1
        assert score.guarantee == "none known"

    def test_disjoint_reports_guarantee(self):
        sc = score_strategy("disjoint", m=6, k=3, n_permutations=4, sim_tasks=400)
        assert "Cor 1" in sc.guarantee


class TestEvaluate:
    def test_table_contains_all_strategies(self):
        table = evaluate_strategies(
            m=6, k=3, n_permutations=4, sim_tasks=400, names=("disjoint", "overlapping")
        )
        names = [row[0] for row in table.rows]
        assert names == ["disjoint", "overlapping"]

    def test_overlapping_capacity_dominates_disjoint(self):
        table = evaluate_strategies(
            m=9, k=3, n_permutations=6, sim_tasks=400, names=("disjoint", "overlapping")
        )
        by_name = {row[0]: row for row in table.rows}
        assert by_name["overlapping"][2] >= by_name["disjoint"][2]
