"""Tests for the exploration replication strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import (
    EXPLORATION_STRATEGIES,
    DualPartition,
    MirroredIntervals,
    RandomKSets,
)
from repro.psets import is_circular_interval


class TestDualPartition:
    def test_set_sizes(self):
        strat = DualPartition(12, 4)
        assert all(len(strat.replicas(u)) == 4 for u in range(1, 13))

    def test_home_in_own_set(self):
        strat = DualPartition(15, 3)
        for u in range(1, 16):
            assert u in strat.replicas(u)

    def test_two_partitions_only(self):
        """Every replica set is a group of partition A or B."""
        strat = DualPartition(12, 4)
        groups_a = {strat._group_a(u) for u in range(1, 13)}
        groups_b = {strat._group_b(u) for u in range(1, 13)}
        for u in range(1, 13):
            assert strat.replicas(u) in groups_a | groups_b

    def test_central_homes_prefer_their_group(self):
        # m=12, k=4: partition A groups {1..4}, {5..8}, {9..12};
        # B (shift 2) groups {3..6}, {7..10}, {11,12,1,2}.
        strat = DualPartition(12, 4)
        # machine 2 is edge-of-A (dist 1... in A {1..4}: outside dist for 2
        # is min(1, 2)=1... in B {11,12,1,2}: 2 is the edge too) — just
        # check determinism and membership here.
        assert strat.replicas(2) in ({1, 2, 3, 4}, {11, 12, 1, 2})
        # machine 4-5 boundary: 4 central in B {3,4,5,6}
        assert strat.replicas(4) == {3, 4, 5, 6}

    def test_more_distinct_sets_than_disjoint(self):
        """Dual offers more routing diversity than a single partition."""
        strat = DualPartition(12, 4)
        assert len({strat.replicas(u) for u in range(1, 13)}) > 3


class TestRandomKSets:
    def test_sizes_and_membership(self):
        strat = RandomKSets(15, 3)
        for u in range(1, 16):
            s = strat.replicas(u)
            assert len(s) == 3
            assert u in s

    def test_deterministic(self):
        a = RandomKSets(10, 3)
        b = RandomKSets(10, 3)
        assert all(a.replicas(u) == b.replicas(u) for u in range(1, 11))

    def test_salt_changes_layout(self):
        a = RandomKSets(10, 3, salt="x")
        b = RandomKSets(10, 3, salt="y")
        assert any(a.replicas(u) != b.replicas(u) for u in range(1, 11))

    @given(st.integers(2, 20), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_valid_for_any_m_k(self, m, k):
        k = min(k, m)
        strat = RandomKSets(m, k)
        for u in range(1, m + 1):
            s = strat.replicas(u)
            assert len(s) == k
            assert all(1 <= j <= m for j in s)


class TestMirroredIntervals:
    def test_odd_homes_clockwise(self):
        strat = MirroredIntervals(8, 3)
        assert strat.replicas(3) == {3, 4, 5}

    def test_even_homes_counterclockwise(self):
        strat = MirroredIntervals(8, 3)
        assert strat.replicas(4) == {2, 3, 4}

    def test_all_ring_intervals(self):
        strat = MirroredIntervals(9, 4)
        assert all(
            is_circular_interval(strat.replicas(u), 9) for u in range(1, 10)
        )

    def test_home_in_own_set(self):
        strat = MirroredIntervals(10, 3)
        for u in range(1, 11):
            assert u in strat.replicas(u)


class TestRegistry:
    def test_all_strategies_instantiable(self):
        for name, cls in EXPLORATION_STRATEGIES.items():
            strat = cls(12, 3)
            sets = strat.all_sets()
            assert len(sets) == 12
            assert all(s for s in sets)
