"""Tests for the related-machines substrate."""

import numpy as np
import pytest

from repro.related import SpeedCluster, related_schedule_stats


class TestSpeedCluster:
    def test_basic(self):
        c = SpeedCluster(np.array([1.0, 2.0, 4.0]))
        assert c.m == 3
        assert c.speed(2) == 2.0
        assert c.exec_time(8.0, 3) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedCluster(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            SpeedCluster(np.array([]))

    def test_machine_bounds(self):
        c = SpeedCluster.identical(2)
        with pytest.raises(ValueError):
            c.speed(3)

    def test_identical(self):
        c = SpeedCluster.identical(4)
        assert np.allclose(c.speeds, 1.0)

    def test_geometric(self):
        c = SpeedCluster.geometric(4, ratio=2.0)
        assert c.speeds.tolist() == [1.0, 2.0, 4.0, 8.0]

    def test_two_tier(self):
        c = SpeedCluster.two_tier(5, fast=2, speedup=3.0)
        assert c.speeds.tolist() == [3.0, 3.0, 1.0, 1.0, 1.0]
        with pytest.raises(ValueError):
            SpeedCluster.two_tier(3, fast=4)


class TestStats:
    def test_utilization(self):
        from repro.core import Instance
        from repro.related import GreedyRelated

        cluster = SpeedCluster.identical(2)
        inst = Instance.build(2, releases=[0, 0], procs=[2.0, 2.0])
        sched = GreedyRelated(cluster).run(inst)
        stats = related_schedule_stats(sched, cluster)
        assert stats["speed_weighted_utilization"] == pytest.approx(1.0)
        assert stats["max_flow"] == 2.0
