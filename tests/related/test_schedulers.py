"""Tests for Greedy and Slow-Fit on related machines."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Instance, eft_schedule
from repro.related import GreedyRelated, SlowFitRelated, SpeedCluster
from tests.conftest import unrestricted_instances


class TestGreedy:
    def test_prefers_fast_machine_when_idle(self):
        cluster = SpeedCluster(np.array([1.0, 4.0]))
        inst = Instance.build(2, releases=[0], procs=[4.0])
        sched = GreedyRelated(cluster).run(inst)
        assert sched.machine_of(0) == 2
        assert sched[0].task.proc == 1.0  # 4 work / speed 4

    def test_balances_by_finish_time(self):
        cluster = SpeedCluster(np.array([1.0, 2.0]))
        inst = Instance.build(2, releases=[0, 0], procs=[2.0, 2.0])
        sched = GreedyRelated(cluster).run(inst)
        # first task -> machine 2 (finish 1); second: M1 finish 2 vs
        # M2 finish 2 — tie on finish, faster machine wins
        assert sched.machine_of(0) == 2
        assert sched.machine_of(1) == 2

    def test_respects_processing_sets(self):
        cluster = SpeedCluster(np.array([1.0, 10.0]))
        inst = Instance.build(2, releases=[0], procs=[5.0], machine_sets=[{1}])
        sched = GreedyRelated(cluster).run(inst)
        assert sched.machine_of(0) == 1

    def test_schedule_valid(self):
        cluster = SpeedCluster.geometric(3)
        inst = Instance.build(3, releases=[0, 0, 1, 2], procs=[3, 1, 2, 1])
        sched = GreedyRelated(cluster).run(inst)
        sched.validate()

    @given(unrestricted_instances(max_m=4, max_n=15))
    @settings(max_examples=40, deadline=None)
    def test_identical_speeds_reduce_to_eft(self, inst):
        """With unit speeds Greedy's decisions coincide with EFT-Min
        (finish-time tie -> lower index, same as EFT-Min's tie set
        choice)."""
        sched_q = GreedyRelated(SpeedCluster.identical(inst.m)).run(inst)
        sched_p = eft_schedule(inst, tiebreak="min")
        for t in inst:
            assert sched_q.machine_of(t.tid) == sched_p.machine_of(t.tid)
            assert sched_q.start_of(t.tid) == pytest.approx(sched_p.start_of(t.tid))

    def test_release_order_enforced(self):
        from repro.core import Task

        g = GreedyRelated(SpeedCluster.identical(2))
        g.submit(Task(tid=0, release=5, proc=1))
        with pytest.raises(ValueError, match="release order"):
            g.submit(Task(tid=1, release=1, proc=1))


class TestSlowFit:
    def test_prefers_slow_machine_that_fits(self):
        cluster = SpeedCluster(np.array([1.0, 4.0]))
        # With a generous bound both machines meet the deadline and the
        # slowest wins; with a tight bound only the fast machine fits.
        inst = Instance.build(2, releases=[0], procs=[1.0])
        generous = SlowFitRelated(cluster, initial_bound=2.0).run(inst)
        assert generous.machine_of(0) == 1
        tight = SlowFitRelated(cluster).run(inst)  # bound = fastest time
        assert tight.machine_of(0) == 2

    def test_reserves_fast_machine(self):
        """Steady small tasks go to the slow machine, leaving the fast
        one free for a later big task — the scenario Greedy fumbles."""
        cluster = SpeedCluster(np.array([1.0, 8.0]))
        releases = [0.0, 0.0, 0.0, 1.0]
        works = [1.0, 1.0, 1.0, 16.0]
        inst = Instance.build(2, releases=releases, procs=works)
        sf_sched = SlowFitRelated(cluster, initial_bound=4.0).run(inst)
        # with Lambda = 4, small tasks (deadline r+8) fit on the slow
        # machine back-to-back (finish 1, 2, 3); the big task needs the
        # fast machine (16/8 = 2 <= 8).
        assert [sf_sched.machine_of(i) for i in range(3)] == [1, 1, 1]
        assert sf_sched.machine_of(3) == 2

    def test_doubling_counted(self):
        cluster = SpeedCluster(np.array([1.0]))
        inst = Instance.build(1, releases=[0, 0, 0, 0], procs=[1.0, 1.0, 1.0, 1.0])
        sf = SlowFitRelated(cluster)
        sf.run(inst)
        assert sf.doublings >= 1  # queueing forces the bound up

    def test_schedule_valid(self):
        cluster = SpeedCluster.two_tier(4, fast=1, speedup=4.0)
        inst = Instance.build(4, releases=[0, 0, 1, 1, 2, 3], procs=[2, 1, 4, 1, 2, 1])
        sched = SlowFitRelated(cluster).run(inst)
        sched.validate()

    @given(unrestricted_instances(max_m=4, max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_valid_on_random(self, inst):
        cluster = SpeedCluster.geometric(inst.m, ratio=1.5)
        SlowFitRelated(cluster).run(inst).validate()

    def test_respects_processing_sets(self):
        cluster = SpeedCluster(np.array([1.0, 10.0]))
        inst = Instance.build(2, releases=[0, 0], procs=[2.0, 2.0], machine_sets=[{1}, {1}])
        sched = SlowFitRelated(cluster).run(inst)
        sched.validate()
        assert all(sched.machine_of(i) == 1 for i in range(2))


class TestGreedyVsSlowFit:
    def test_complementary_failure_modes(self):
        """The scenario motivating Double-Fit: a stream of small tasks
        followed by a huge one.  Greedy parks small work on the fast
        machine (it finishes earliest there), so the big task finds it
        busy; Slow-Fit kept it free."""
        cluster = SpeedCluster(np.array([1.0, 8.0]))
        releases = [0.0, 0.1, 0.2, 0.3]
        works = [1.0, 1.0, 1.0, 24.0]
        inst = Instance.build(2, releases=releases, procs=works)
        greedy = GreedyRelated(cluster).run(inst)
        slowfit = SlowFitRelated(cluster, initial_bound=4.0).run(inst)
        big = 3
        assert slowfit.machine_of(big) == 2
        assert slowfit.flow_of(big) <= greedy.flow_of(big) + 1e-9
