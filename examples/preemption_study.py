#!/usr/bin/env python
"""Preemption study: what does the non-preemptive model cost?

The paper's model forbids preemption (requests are atomic).  Table 1
recalls that preemption changes the achievable ratios; this example
quantifies the gap on concrete workloads with the extension solvers:

1. exact preemptive vs non-preemptive offline optima on small random
   instances (the price of atomicity);
2. online preemptive policies — FIFO priorities (never preempt in
   practice) vs SRPT (aggressive) — on a bursty stream, showing SRPT's
   classic trade: better mean flow, worse max flow.
"""

import numpy as np

from repro.core import Instance
from repro.offline import optimal_fmax, optimal_preemptive_fmax
from repro.simulation import PreemptiveEngine, fifo_priority, srpt_priority

def offline_gap() -> None:
    rng = np.random.default_rng(4)
    print("offline optima on random instances (m=2, n=7):")
    print("  preemptive | non-preemptive | gap")
    for _ in range(6):
        releases = np.sort(rng.uniform(0, 4, size=7))
        procs = rng.uniform(0.3, 3.0, size=7)
        inst = Instance.build(2, releases=releases, procs=procs)
        pre = optimal_preemptive_fmax(inst)
        non = optimal_fmax(inst)
        print(f"  {pre:10.3f} | {non:14.3f} | {non / pre:5.3f}x")


def online_policies() -> None:
    rng = np.random.default_rng(11)
    n = 60
    releases = np.sort(rng.uniform(0, 25, size=n))
    procs = rng.exponential(scale=1.0, size=n) + 0.1
    inst = Instance.build(3, releases=releases, procs=procs)

    fifo = PreemptiveEngine(fifo_priority).run(inst)
    srpt = PreemptiveEngine(srpt_priority).run(inst)
    print("\nonline preemptive policies on a bursty stream (m=3, n=60):")
    print(f"  FIFO priorities: Fmax={fifo.max_flow:6.2f}  mean={fifo.mean_flow:5.2f}  "
          f"preemptions={fifo.preemptions}")
    print(f"  SRPT           : Fmax={srpt.max_flow:6.2f}  mean={srpt.mean_flow:5.2f}  "
          f"preemptions={srpt.preemptions}")
    print("  (SRPT trades tail latency for mean latency — the paper's "
        "objective is the tail, hence FIFO/EFT)")


if __name__ == "__main__":
    offline_gap()
    online_policies()
