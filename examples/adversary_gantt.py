#!/usr/bin/env python
"""Watch EFT-Min fall into the Theorem 8 trap (Figures 3 and 4).

Releases the adversary batches step by step, printing the schedule
profile as it converges to the stable profile
w_tau(j) = min(m - j, m - k), then shows the Gantt chart and the flow
blow-up to m - k + 1 — while the offline optimum keeps every flow at 1.
"""

from repro.adversaries import EFTIntervalAdversary, optimal_adversary_schedule, run_with_profiles
from repro.core import EFT, render_gantt, render_profile
from repro.theory import stable_profile

def main() -> None:
    m, k = 6, 3
    steps = 14

    schedule, profiles = run_with_profiles(m, k, steps, EFT(m, tiebreak="min"))
    wtau = stable_profile(m, k)
    print(f"adversary on m={m}, k={k}: stable profile w_tau = {wtau.tolist()}")
    for t in (0, 2, 5, steps - 1):
        print(f"\nprofile just before step t={t}:")
        print(render_profile(profiles[t], wtau))

    print("\nEFT-Min schedule (first 10 time units):")
    print(render_gantt(schedule, until=10))

    result = EFTIntervalAdversary(m, k).run(lambda mm: EFT(mm, tiebreak="min"))
    print(f"\nafter m^3 = {m**3} steps: EFT-Min Fmax = {result.fmax:g} "
          f"(theory: m-k+1 = {m - k + 1})")

    opt = optimal_adversary_schedule(m, k, 4)
    print(f"offline optimum on the same instance: Fmax = {opt.max_flow:g}")
    print(render_gantt(opt, until=5))


if __name__ == "__main__":
    main()
