#!/usr/bin/env python
"""Key-value store scenario: replication strategy vs tail latency.

Models a 15-machine cluster serving Zipf-popular keys (the paper's
Shuffled case, s = 1) at increasing load, replicated with either
overlapping (Dynamo-style ring) or disjoint intervals of size k = 3,
and reports the max response time (Fmax) of EFT scheduling — a
condensed Figure 11.

Also demonstrates the full key-granularity model: a consistent-hashing
ring placing 5 000 keys, whose induced machine popularity feeds the
same pipeline.
"""

import numpy as np

from repro.core import eft_schedule
from repro.maxload import max_load_lp
from repro.simulation import KeyValueStore, WorkloadSpec, generate_workload, shuffled_case

def machine_level_experiment() -> None:
    m, k, n = 15, 3, 5000
    pop = shuffled_case(m, s=1.0, rng=7)
    print(f"machine popularity (s=1, shuffled): {np.round(pop.weights, 3)}")
    for strategy in ("overlapping", "disjoint"):
        lp = max_load_lp(pop, strategy, k)
        print(f"\n{strategy}: theoretical max load = {lp.load_percent:.0f}%")
        for load_pct in (20, 35, 50):
            spec = WorkloadSpec(m=m, n=n, lam=load_pct / 100 * m, k=k, strategy=strategy)
            fmaxes = []
            for rep in range(5):
                inst = generate_workload(spec, rng=100 + rep, popularity=pop)
                fmaxes.append(eft_schedule(inst, tiebreak="min").max_flow)
            print(f"  load {load_pct:3d}%: median Fmax = {np.median(fmaxes):.2f}")


def key_level_experiment() -> None:
    print("\n--- key-granularity model (consistent-hashing ring) ---")
    store = KeyValueStore.build(
        m=15, n_keys=5000, k=3, strategy="overlapping", placement="ring", key_zipf_s=1.0
    )
    pop = store.machine_popularity()
    print(f"induced machine popularity: min={pop.min():.4f} max={pop.max():.4f}")
    inst = store.request_stream(lam=0.35 * 15, n=5000, rng=11)
    sched = eft_schedule(inst, tiebreak="min")
    sched.validate()
    print(f"5000 requests at 35% load: Fmax = {sched.max_flow:.2f}, "
          f"mean flow = {sched.mean_flow:.2f}")


if __name__ == "__main__":
    machine_level_experiment()
    key_level_experiment()
