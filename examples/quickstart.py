#!/usr/bin/env python
"""Quickstart: schedule a handful of requests with EFT.

Builds a small instance with interval processing sets (the shape a
replicated key-value store produces), schedules it online with EFT-Min
and EFT-Max, checks feasibility, compares against the exact offline
optimum, and prints ASCII Gantt charts.
"""

from repro.core import Instance, Task, eft_schedule, render_gantt, summarize
from repro.offline import optimal_unit_schedule

def main() -> None:
    # Six unit requests on four machines; each request may only run on
    # an interval of two consecutive machines (replication factor 2).
    tasks = [
        Task(tid=0, release=0, proc=1, machines=frozenset({1, 2})),
        Task(tid=1, release=0, proc=1, machines=frozenset({1, 2})),
        Task(tid=2, release=0, proc=1, machines=frozenset({2, 3})),
        Task(tid=3, release=1, proc=1, machines=frozenset({3, 4})),
        Task(tid=4, release=1, proc=1, machines=frozenset({1, 2})),
        Task(tid=5, release=2, proc=1, machines=frozenset({2, 3})),
    ]
    instance = Instance(m=4, tasks=tuple(tasks))

    for tiebreak in ("min", "max"):
        schedule = eft_schedule(instance, tiebreak=tiebreak)
        schedule.validate()  # raises if any model constraint is violated
        stats = summarize(schedule)
        print(f"EFT-{tiebreak}: Fmax = {stats.max_flow:g}, "
              f"mean flow = {stats.mean_flow:.2f}, makespan = {stats.makespan:g}")
        print(render_gantt(schedule))
        print()

    opt_value, opt_schedule = optimal_unit_schedule(instance)
    print(f"exact offline optimum: Fmax = {opt_value}")
    print(render_gantt(opt_schedule))


if __name__ == "__main__":
    main()
