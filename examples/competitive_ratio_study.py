#!/usr/bin/env python
"""Measure true competitive ratios of EFT against exact offline optima.

Three checks on random unit instances:

1. unrestricted sets — EFT must stay within 3 - 2/m (Theorem 1);
2. disjoint interval sets — within 3 - 2/k (Corollary 1);
3. overlapping interval sets — no guarantee: the Theorem 8 adversary
   pushes EFT-Min to exactly m - k + 1, far beyond anything random
   instances show.

Also verifies Proposition 1 (FIFO == EFT) on a random instance.
"""

import numpy as np

from repro.adversaries import EFTIntervalAdversary
from repro.core import EFT, eft_schedule, fifo_schedule, Instance
from repro.experiments.ratios import study

def main() -> None:
    m, k = 8, 3

    for strategy, bound in (
        ("full", 3 - 2 / m),
        ("disjoint", 3 - 2 / k),
        ("overlapping", None),
    ):
        s = study(strategy, m=m, k=k, n=40, trials=15, rng_seed=1)
        bound_txt = f"(guarantee {bound:.3f})" if bound else "(no guarantee)"
        print(f"{strategy:12s}: worst EFT/OPT = {s.worst:.3f}, "
              f"mean = {s.mean:.3f} {bound_txt}")

    result = EFTIntervalAdversary(m, k).run(lambda mm: EFT(mm, tiebreak="min"))
    print(f"\nTheorem 8 adversary: EFT-Min forced to ratio {result.ratio:.0f} "
          f"= m - k + 1 = {m - k + 1}")

    rng = np.random.default_rng(0)
    releases = np.sort(rng.uniform(0, 10, size=60))
    procs = rng.uniform(0.5, 2.0, size=60)
    inst = Instance.build(m, releases=releases, procs=procs)
    assert eft_schedule(inst).same_placements(fifo_schedule(inst))
    print("\nProposition 1 checked: FIFO and EFT produced identical schedules")


if __name__ == "__main__":
    main()
