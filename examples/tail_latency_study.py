#!/usr/bin/env python
"""Tail-latency study: clairvoyance, heavy tails, and failures.

Goes beyond the paper's unit-task experiments using the extension
subsystems:

1. variable request sizes (exponential and heavy-tailed Pareto);
2. observable replica-selection policies (least-outstanding, C3-like)
   against the clairvoyant EFT baseline;
3. a machine outage injected mid-run, comparing how the two
   replication schemes absorb it;
4. the Erlang-C analytic prediction of the disjoint strategy's
   capacity wall.
"""

import numpy as np

from repro.analysis import predict_disjoint_curve, stability_limit
from repro.core import eft_schedule
from repro.core.nonclairvoyant import C3Like, LeastOutstanding
from repro.simulation import (
    WorkloadSpec,
    generate_workload,
    inject_outage,
    shuffled_case,
    worst_case,
)

def clairvoyance_gap() -> None:
    m, k = 15, 3
    pop = shuffled_case(m, s=1.0, rng=7)
    print("clairvoyance gap at 40% load (median Fmax of 3 runs):")
    for dist in ("unit", "exp", "pareto"):
        eft_v, lor_v, c3_v = [], [], []
        for rep in range(3):
            spec = WorkloadSpec(m=m, n=3000, lam=0.4 * m, k=k, size_dist=dist)
            inst = generate_workload(spec, rng=rep, popularity=pop)
            eft_v.append(eft_schedule(inst, tiebreak="min").max_flow)
            lor_v.append(LeastOutstanding(m).run(inst).max_flow)
            c3_v.append(C3Like(m).run(inst).max_flow)
        print(f"  {dist:7s}: EFT {np.median(eft_v):6.2f}   "
              f"LOR {np.median(lor_v):6.2f}   C3 {np.median(c3_v):6.2f}")


def outage_comparison() -> None:
    m, k = 15, 3
    print("\n60-unit outage on machine 5 at 60% load:")
    for strategy in ("overlapping", "disjoint"):
        spec = WorkloadSpec(m=m, n=3000, lam=0.6 * m, k=k, strategy=strategy)
        inst = generate_workload(spec, rng=1)
        base = eft_schedule(inst, tiebreak="min").max_flow
        hurt = inject_outage(inst, machine=5, start=10.0, duration=60.0)
        outage_tid = max(t.tid for t in hurt)
        sched = eft_schedule(hurt, tiebreak="min")
        fmax = max(a.flow for a in sched if a.task.tid != outage_tid)
        print(f"  {strategy:12s}: baseline Fmax {base:5.2f} -> with outage {fmax:5.2f}")


def capacity_prediction() -> None:
    m, k = 15, 3
    pop = worst_case(m, 1.0)
    limit = 100 * stability_limit(pop, k) / m
    print(f"\nErlang-C predicted disjoint capacity wall: {limit:.1f}% "
          f"(the Figure 11 red line)")
    pred = predict_disjoint_curve(pop, k, [20, 30, int(limit) - 2], n=3000)
    for load, fmax in pred.items():
        print(f"  predicted Fmax at {load:4.0f}% load: {fmax:6.2f}")


if __name__ == "__main__":
    clairvoyance_gap()
    outage_comparison()
    capacity_prediction()
