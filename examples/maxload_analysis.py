#!/usr/bin/env python
"""Max-load analysis: how much load can each replication scheme absorb?

Solves the Equation (15) linear program across popularity biases and
replication factors (a condensed Figure 10), cross-checks the LP
against the max-flow and closed-form solvers, and prints the
overlapping-vs-disjoint gain.
"""

import numpy as np

from repro.maxload import (
    max_load_disjoint_closed_form,
    max_load_flow,
    max_load_lp,
    sweep_max_load,
)
from repro.simulation import shuffled_case

def main() -> None:
    m, k = 15, 3
    pop = shuffled_case(m, s=1.0, rng=3)

    print("three independent solvers must agree (s=1, shuffled):")
    for strategy in ("overlapping", "disjoint"):
        lp = max_load_lp(pop, strategy, k)
        flow = max_load_flow(pop, strategy, k)
        print(f"  {strategy:12s}: LP lambda*={lp.lam:.4f}  flow={flow:.4f}  "
              f"-> max load {lp.load_percent:.1f}%")
    closed = max_load_disjoint_closed_form(pop, k)
    print(f"  disjoint closed form: lambda* = {closed:.4f}")

    print("\ncondensed Figure 10 sweep (median of 30 permutations):")
    sweep = sweep_max_load(
        m=m,
        s_values=np.array([0.0, 0.5, 1.0, 1.25, 2.0]),
        k_values=np.array([1, 3, 6, 10, 15]),
        n_permutations=30,
        rng=42,
    )
    ratio = sweep.ratio()
    header = "s\\k " + "".join(f"{int(kv):>7d}" for kv in sweep.k_values)
    print(header)
    for si, s in enumerate(sweep.s_values):
        row = "".join(f"{ratio[si, ki]:7.2f}" for ki in range(sweep.k_values.size))
        print(f"{s:4.2f}{row}")
    print(f"\npeak overlapping/disjoint gain: {ratio.max():.2f} "
          f"(the paper reports up to ~1.5)")


if __name__ == "__main__":
    main()
