# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test bench bench-full figures campaign-quick obs-smoke faults-smoke serve-smoke shard-smoke chaos-smoke rebalance-smoke vec-smoke zoo-smoke runner-resilience lint-clean all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Regenerate every paper table/figure via the CLI (quick scales).
figures:
	$(PYTHON) -m repro table1
	$(PYTHON) -m repro table2 --m 16 --k 3 --p 1000
	$(PYTHON) -m repro fig03
	$(PYTHON) -m repro fig08
	$(PYTHON) -m repro fig10 --quick
	$(PYTHON) -m repro fig11 --quick
	$(PYTHON) -m repro ratios
	$(PYTHON) -m repro tails
	$(PYTHON) -m repro explore

# End-to-end exercise of the parallel campaign runner: run a small
# fig11 campaign twice with -j 2 — the second pass must be all-cached —
# then replay a golden trace.
campaign-quick:
	rm -rf results/.cache-quick
	PYTHONPATH=src $(PYTHON) -m repro campaign fig11 --quick -j 2 \
		--m 6 --k 2 --n 200 --repeats 2 --cache-dir results/.cache-quick
	PYTHONPATH=src $(PYTHON) -m repro campaign fig11 --quick -j 2 \
		--m 6 --k 2 --n 200 --repeats 2 --cache-dir results/.cache-quick \
		| grep -q "0 executed"
	PYTHONPATH=src $(PYTHON) -m repro replay --golden eft-min-m4 \
		| grep -q "placements match recorded trace: yes"
	rm -rf results/.cache-quick

# Metrics smoke: a tiny campaign with --metrics at two job counts must
# produce byte-identical, schema-valid snapshots.
obs-smoke:
	rm -rf results/.obs-smoke
	PYTHONPATH=src $(PYTHON) -m repro campaign fig11 --quick -j 1 \
		--m 6 --k 2 --n 150 --repeats 2 --cache-dir results/.obs-smoke/cache \
		--metrics results/.obs-smoke/m1.json
	PYTHONPATH=src $(PYTHON) -m repro campaign fig11 --quick -j 4 \
		--m 6 --k 2 --n 150 --repeats 2 --cache-dir results/.obs-smoke/cache \
		--metrics results/.obs-smoke/m4.json
	cmp results/.obs-smoke/m1.json results/.obs-smoke/m4.json
	PYTHONPATH=src $(PYTHON) -m repro.obs.validate \
		results/.obs-smoke/m1.json results/.obs-smoke/m4.json
	rm -rf results/.obs-smoke

# Fault-injection smoke: a tiny chaos-faulted run must complete, be
# deterministic (two runs, identical snapshots) and schema-valid.
faults-smoke:
	rm -rf results/.faults-smoke
	PYTHONPATH=src $(PYTHON) -m repro faulted --m 6 --k 2 --n 120 \
		--mtbf 30 --mttr 4 --policy restart \
		--metrics results/.faults-smoke/a.json
	PYTHONPATH=src $(PYTHON) -m repro faulted --m 6 --k 2 --n 120 \
		--mtbf 30 --mttr 4 --policy restart \
		--metrics results/.faults-smoke/b.json
	cmp results/.faults-smoke/a.json results/.faults-smoke/b.json
	PYTHONPATH=src $(PYTHON) -m repro.obs.validate \
		results/.faults-smoke/a.json results/.faults-smoke/b.json
	rm -rf results/.faults-smoke

# Serving smoke: a short loopback bench-serve must drop nothing
# (errors: 0), place identically across two same-seed runs (equal
# assignment digests) and write a schema-valid metrics snapshot.
serve-smoke:
	rm -rf results/.serve-smoke
	mkdir -p results/.serve-smoke
	PYTHONPATH=src $(PYTHON) -m repro bench-serve --m 4 --k 2 \
		--rate 400 --n 250 --proc 0.005 --seed 42 \
		--metrics results/.serve-smoke/a.metrics.json \
		| tee results/.serve-smoke/a.txt
	PYTHONPATH=src $(PYTHON) -m repro bench-serve --m 4 --k 2 \
		--rate 400 --n 250 --proc 0.005 --seed 42 \
		--metrics results/.serve-smoke/b.metrics.json \
		| tee results/.serve-smoke/b.txt
	grep -q "errors: 0" results/.serve-smoke/a.txt
	grep -q "errors: 0" results/.serve-smoke/b.txt
	grep "assignments sha256" results/.serve-smoke/a.txt > results/.serve-smoke/a.sha
	grep "assignments sha256" results/.serve-smoke/b.txt > results/.serve-smoke/b.sha
	cmp results/.serve-smoke/a.sha results/.serve-smoke/b.sha
	PYTHONPATH=src $(PYTHON) -m repro.obs.validate \
		results/.serve-smoke/a.metrics.json results/.serve-smoke/b.metrics.json
	rm -rf results/.serve-smoke

# Sharded serving smoke: a 3-shard loopback router over a disjoint
# workload (m=6, k=2) must drop nothing, place deterministically across
# two runs, and — Theorem 6 — byte-match the single-dispatcher digest.
shard-smoke:
	rm -rf results/.shard-smoke
	mkdir -p results/.shard-smoke
	PYTHONPATH=src $(PYTHON) -m repro bench-serve --m 6 --k 2 \
		--strategy disjoint --shards 3 --rate 600 --n 180 \
		--proc 0.005 --seed 42 \
		| tee results/.shard-smoke/a.txt
	PYTHONPATH=src $(PYTHON) -m repro bench-serve --m 6 --k 2 \
		--strategy disjoint --shards 3 --rate 600 --n 180 \
		--proc 0.005 --seed 42 \
		| tee results/.shard-smoke/b.txt
	PYTHONPATH=src $(PYTHON) -m repro bench-serve --m 6 --k 2 \
		--strategy disjoint --shards 1 --rate 600 --n 180 \
		--proc 0.005 --seed 42 \
		| tee results/.shard-smoke/single.txt
	grep -q "errors: 0" results/.shard-smoke/a.txt
	grep -q "errors: 0" results/.shard-smoke/b.txt
	grep -q "3 shard(s)" results/.shard-smoke/a.txt
	grep "assignments sha256" results/.shard-smoke/a.txt > results/.shard-smoke/a.sha
	grep "assignments sha256" results/.shard-smoke/b.txt > results/.shard-smoke/b.sha
	grep "assignments sha256" results/.shard-smoke/single.txt > results/.shard-smoke/single.sha
	cmp results/.shard-smoke/a.sha results/.shard-smoke/b.sha
	cmp results/.shard-smoke/a.sha results/.shard-smoke/single.sha
	rm -rf results/.shard-smoke

# Chaos smoke: a seeded chaos drive (drops, truncation, corruption,
# duplicate delivery) with shard 0 SIGKILLed mid-run must lose nothing,
# double-dispatch nothing, and — after journal replay — byte-match the
# clean run's assignment digest.  Recovery stats land in
# BENCH_recovery.json.
chaos-smoke:
	rm -rf results/.chaos-smoke
	mkdir -p results/.chaos-smoke
	PYTHONPATH=src $(PYTHON) -m repro bench-serve --m 6 --k 2 \
		--strategy disjoint --shards 3 --rate 400 --n 120 \
		--proc 0.005 --seed 42 \
		| tee results/.chaos-smoke/clean.txt
	PYTHONPATH=src $(PYTHON) -m repro bench-serve --m 6 --k 2 \
		--strategy disjoint --shards 3 --rate 400 --n 120 \
		--proc 0.005 --seed 42 \
		--chaos --chaos-seed 7 --kill-shard 0 --kill-after 0.4 \
		--recovery-out results/.chaos-smoke/BENCH_recovery.json \
		| tee results/.chaos-smoke/chaos.txt
	grep -q "errors: 0" results/.chaos-smoke/chaos.txt
	grep -q "lost: 0" results/.chaos-smoke/chaos.txt
	grep -q "double-dispatched: 0" results/.chaos-smoke/chaos.txt
	grep "assignments sha256" results/.chaos-smoke/clean.txt > results/.chaos-smoke/clean.sha
	grep "assignments sha256" results/.chaos-smoke/chaos.txt > results/.chaos-smoke/chaos.sha
	cmp results/.chaos-smoke/clean.sha results/.chaos-smoke/chaos.sha
	cp results/.chaos-smoke/BENCH_recovery.json BENCH_recovery.json
	rm -rf results/.chaos-smoke

# Rebalance smoke: on a hotspot-shift workload the adaptive policy
# must beat both static placements on p99 flow, the recorded trace
# must replay byte-identically, and two same-seed runs must print
# identical reports.
rebalance-smoke:
	rm -rf results/.rebalance-smoke
	mkdir -p results/.rebalance-smoke
	PYTHONPATH=src $(PYTHON) -m repro rebalance --m 12 --n 1500 \
		--policy compare --seed 0 \
		--events results/.rebalance-smoke/reb.trace.jsonl \
		| tee results/.rebalance-smoke/a.txt
	PYTHONPATH=src $(PYTHON) -m repro rebalance --m 12 --n 1500 \
		--policy compare --seed 0 \
		| tee results/.rebalance-smoke/b.txt
	grep -q "adaptive beats both static p99: yes" results/.rebalance-smoke/a.txt
	grep "sha256" results/.rebalance-smoke/a.txt > results/.rebalance-smoke/a.sha
	grep "sha256" results/.rebalance-smoke/b.txt > results/.rebalance-smoke/b.sha
	cmp results/.rebalance-smoke/a.sha results/.rebalance-smoke/b.sha
	PYTHONPATH=src $(PYTHON) -m repro replay \
		results/.rebalance-smoke/reb.trace.jsonl \
		| grep -q "byte-identical replay: yes"
	rm -rf results/.rebalance-smoke

# Vectorized-engine smoke: every golden fixture must replay
# byte-identically through the array backend (EFT-Rand exercises the
# silent reference fallback), a fresh workload must match the
# reference bit-for-bit, and a quick-scale speedup race must clear
# the throughput floor.
vec-smoke:
	PYTHONPATH=src $(PYTHON) -m repro vec-check --backend array
	PYTHONPATH=src $(PYTHON) -m repro vec-check --backend auto
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_scheduler_throughput.py -k speedup \
		-q --benchmark-disable

# Zoo-smoke: the compare-schedulers grid must be byte-deterministic
# (two identical-seed runs, identical output including traces) and the
# provable ordering must hold — fault-free identical machines, SRPT-PS
# mean flow <= EFT-Min mean flow.
zoo-smoke:
	rm -rf results/.zoo-smoke
	mkdir -p results/.zoo-smoke/ta results/.zoo-smoke/tb
	PYTHONPATH=src $(PYTHON) -m repro compare-schedulers \
		--m 6 --n 200 --loads 0.7,0.9 --seed 0 \
		--traces results/.zoo-smoke/ta \
		| tee results/.zoo-smoke/a.txt
	PYTHONPATH=src $(PYTHON) -m repro compare-schedulers \
		--m 6 --n 200 --loads 0.7,0.9 --seed 0 \
		--traces results/.zoo-smoke/tb \
		> results/.zoo-smoke/b.txt
	cmp results/.zoo-smoke/a.txt results/.zoo-smoke/b.txt
	for f in results/.zoo-smoke/ta/*.jsonl; do \
		cmp "$$f" "results/.zoo-smoke/tb/$$(basename $$f)" || exit 1; \
	done
	grep -q "sanity identical-machines fault-free: .*: OK" results/.zoo-smoke/a.txt

# Runner-resilience: a crashing unit must yield exactly one failed
# outcome (not a pool abort), retries must heal a flaky unit, and an
# interrupted campaign must leave a resumable manifest.
runner-resilience:
	PYTHONPATH=src $(PYTHON) -m repro.faults.selftest

all: install test bench
