# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test bench bench-full figures lint-clean all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Regenerate every paper table/figure via the CLI (quick scales).
figures:
	$(PYTHON) -m repro table1
	$(PYTHON) -m repro table2 --m 16 --k 3 --p 1000
	$(PYTHON) -m repro fig03
	$(PYTHON) -m repro fig08
	$(PYTHON) -m repro fig10 --quick
	$(PYTHON) -m repro fig11 --quick
	$(PYTHON) -m repro ratios
	$(PYTHON) -m repro tails
	$(PYTHON) -m repro explore

all: install test bench
